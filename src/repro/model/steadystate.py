"""Exact steady-state early-exit for the lockstep simulation.

Section III-E (Fig. 6) observes that FS case counts are piecewise
*linear* in the chunk-run index: after a short warm-up the per-chunk-run
cache-state transition becomes periodic, because consecutive chunk runs
execute the *same* access pattern merely shifted through memory by a
constant byte stride (the static round-robin schedule advances every
thread's parallel positions by ``num_threads × chunk`` each run).  This
module turns that observation into an **exact** early exit — not a
regression: once two consecutive chunk-run boundaries reach
shift-isomorphic cache states *and* produce identical stat deltas, every
remaining run is a renamed replay of the last simulated one, so the
remainder is extrapolated in closed form and the detector state is
advanced by renaming lines (:meth:`~repro.model.detector.FSDetector.
shift_lines`), which commutes with detector transitions.

The three pieces:

:class:`ShiftProfile`
    Compile-time check that the nest admits a uniform per-run shift at
    all (needs full chunk runs — ``parallel_trip % (T·chunk) == 0`` —
    and a single parallel-loop stride per array), plus the smallest
    period ``p`` (in chunk runs) for which every array's shift is a
    whole number of cache lines.
:func:`compute_shift_profile`
    Builds the profile from an ownership generator, or returns ``None``
    when the loop does not qualify (the model then falls back to plain
    full simulation — the early exit is strictly opt-in-when-provable).
:class:`SteadyStateRunner`
    Drives the simulation period by period, fingerprints the canonical
    (shift-normalized) cache state at period boundaries, and on the
    first repeat extrapolates all skippable periods exactly: scalar
    counters and the pair/thread matrices scale linearly, the per-line
    victim attribution is replayed with per-period line shifts, the
    optional Fig. 6 series is tiled from the matched window, and the
    cache state is renamed to what full simulation would have produced
    so the tail (and any later outer-loop executions) resume exactly.

Outer loops around the parallel loop restart the sweep through memory,
so periodicity tracking resets at each outer execution while the
detector state carries across — identical to the reference walk.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.model.detector import FSDetector, FSStats
from repro.model.ownership import OwnershipListGenerator
from repro.obs import get_registry, span
from repro.resilience.budget import Budget

__all__ = [
    "ShiftProfile",
    "SteadyStateRunner",
    "compute_shift_profile",
]

#: scalar FSStats fields propagated through window deltas/extrapolation
_SCALARS = FSStats._SCALARS


@dataclass(frozen=True)
class ShiftProfile:
    """Per-chunk-run memory-shift structure of a schedulable nest.

    Attributes
    ----------
    period_runs:
        Chunk runs per canonical period ``p`` — the smallest count for
        which every array's per-run byte shift is a whole number of
        cache lines.
    runs_per_exec:
        Full chunk runs in one execution of the parallel loop.
    execs:
        Executions of the parallel loop (product of outer trip counts).
    array_names / array_start_lines / array_end_lines:
        Placed arrays sorted by start line (inclusive bounds), for
        line → array classification.
    line_shifts:
        Cache-line shift of each array per period, aligned with
        ``array_names``.
    """

    period_runs: int
    runs_per_exec: int
    execs: int
    array_names: tuple[str, ...]
    array_start_lines: tuple[int, ...]
    array_end_lines: tuple[int, ...]
    line_shifts: tuple[int, ...]

    def classify(self, line: int) -> int:
        """Index of the array owning ``line`` (−1 when unplaced)."""
        i = bisect_right(self.array_start_lines, line) - 1
        if i >= 0 and line <= self.array_end_lines[i]:
            return i
        return -1

    def shift_of(self, line: int) -> int:
        """Line shift per period for the array owning ``line``."""
        i = self.classify(line)
        return self.line_shifts[i] if i >= 0 else 0

    def canon(self, boundary: int) -> Callable[[int], object]:
        """Shift-normalizing key function for period boundary ``b``.

        Two cache states at boundaries ``b`` and ``b'`` are
        shift-isomorphic iff their canonical fingerprints are equal.
        """
        shifts = tuple(boundary * d for d in self.line_shifts)

        def _canon(line: int) -> object:
            i = self.classify(line)
            if i < 0:
                return line
            return (i, line - shifts[i])

        return _canon

    def renamer(self, periods: int) -> Callable[[int], int]:
        """Line renaming that advances the state by ``periods`` periods."""
        shifts = tuple(periods * d for d in self.line_shifts)

        def _rename(line: int) -> int:
            i = self.classify(line)
            return line + shifts[i] if i >= 0 else line

        return _rename

    # -- vectorized variants (semantics identical, array-at-a-time) ---------------

    def _tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        starts = np.asarray(self.array_start_lines, dtype=np.int64)
        ends = np.asarray(self.array_end_lines, dtype=np.int64)
        shifts = np.asarray(self.line_shifts, dtype=np.int64)
        return starts, ends, shifts

    def classify_arrays(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify` over an int64 line-id array."""
        starts, ends, _ = self._tables()
        idx = np.searchsorted(starts, lines, side="right") - 1
        valid = (idx >= 0) & (lines <= ends[np.maximum(idx, 0)])
        return np.where(valid, idx, -1)

    def shift_of_arrays(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shift_of` over an int64 line-id array."""
        _, _, shifts = self._tables()
        idx = self.classify_arrays(lines)
        return np.where(idx >= 0, shifts[np.maximum(idx, 0)], 0)

    def canon_arrays(
        self, boundary: int
    ) -> Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]:
        """Vectorized :meth:`canon`: lines → ``(array_idx, shifted)``.

        Feeds :meth:`~repro.model.detector.FSDetector.state_fingerprint`
        via its ``canon_arrays`` parameter; digests are only comparable
        against other vectorized-canon digests.
        """
        starts, ends, shifts = self._tables()
        shifted = shifts * boundary

        def _canon(lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            idx = np.searchsorted(starts, lines, side="right") - 1
            safe = np.maximum(idx, 0)
            valid = (idx >= 0) & (lines <= ends[safe])
            aidx = np.where(valid, idx, -1)
            return aidx, lines - np.where(valid, shifted[safe], 0)

        return _canon

    def renamer_arrays(
        self, periods: int
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Vectorized :meth:`renamer` (for ``shift_lines``)."""
        starts, ends, shifts = self._tables()
        shifted = shifts * periods

        def _rename(lines: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(starts, lines, side="right") - 1
            safe = np.maximum(idx, 0)
            valid = (idx >= 0) & (lines <= ends[safe])
            return lines + np.where(valid, shifted[safe], 0)

        return _rename


def compute_shift_profile(
    gen: OwnershipListGenerator, num_threads: int
) -> ShiftProfile | None:
    """Shift profile of the generator's nest, or ``None`` if ineligible.

    Eligibility (all decidable at compile time):

    - the parallel trip count is a multiple of ``num_threads × chunk``
      (every chunk run is *full*, so consecutive runs are exact
      translates — a ragged tail breaks the isomorphism);
    - every reference to a given array has the same parallel-loop
      coefficient (one uniform byte shift per array per run);
    - at least ``3 × period`` runs per execution (two windows to detect
      the repeat, at least one to make skipping worthwhile).
    """
    space = gen.iteration_space
    T = num_threads
    c = space.chunk
    ptrip = space.parallel_trip
    if ptrip <= 0 or c <= 0 or T <= 0:
        return None
    if ptrip % (T * c) != 0:
        return None
    runs_per_exec = ptrip // (T * c)
    ploop = gen.enum.parallel_loop
    line_size = gen.line_size
    # Per-array byte delta per chunk run: the parallel variable's value
    # advances by T·c·step, scaled by the reference's coefficient.
    deltas: dict[str, int] = {}
    for ref in gen.refs:
        coeff = gen.space.address_expr(ref).coeff(ploop.var)
        a = coeff * ploop.step * T * c
        name = ref.array.name
        if name in deltas and deltas[name] != a:
            return None  # conflicting strides: no uniform shift
        deltas[name] = a
    period = 1
    for a in deltas.values():
        if a:
            pa = line_size // math.gcd(line_size, abs(a))
            period = period * pa // math.gcd(period, pa)
    if runs_per_exec < 3 * period:
        return None
    placed = sorted(
        gen.space.arrays(), key=lambda arr: gen.space.base(arr.name)
    )
    names: list[str] = []
    starts: list[int] = []
    ends: list[int] = []
    shifts: list[int] = []
    for arr in placed:
        base = gen.space.base(arr.name)
        names.append(arr.name)
        starts.append(base // line_size)
        ends.append((base + max(arr.size_bytes(), 1) - 1) // line_size)
        shifts.append(deltas.get(arr.name, 0) * period // line_size)
    return ShiftProfile(
        period_runs=period,
        runs_per_exec=runs_per_exec,
        execs=space.outer_total,
        array_names=tuple(names),
        array_start_lines=tuple(starts),
        array_end_lines=tuple(ends),
        line_shifts=tuple(shifts),
    )


@dataclass
class _WindowDelta:
    """Stat movement across one detection window (``P`` chunk runs)."""

    scalars: tuple[int, ...]
    by_thread: dict[int, int]
    by_line: dict[int, int]
    by_pair: dict[tuple[int, int], int]
    per_run_fs: list[int] | None  # per-run fs-case deltas (series mode)


class SteadyStateRunner:
    """Period-aware driver for one full-loop analysis (see module docs).

    Parameters
    ----------
    gen / detector:
        The ownership generator and (possibly fast) detector to drive.
    profile:
        Shift profile from :func:`compute_shift_profile`.
    thread_order:
        Within-step thread interleaving override (ablation knob).
    budget:
        Optional deadline budget, checked between detector blocks.
    record_series:
        Sample cumulative FS cases at every chunk-run boundary.
    block_steps:
        Target lockstep steps per detector call; periods are batched up
        to this size so short periods don't pay per-call overhead (any
        multiple of the period is itself a valid period).
    """

    def __init__(
        self,
        gen: OwnershipListGenerator,
        detector: FSDetector,
        profile: ShiftProfile,
        thread_order: Sequence[int] | None = None,
        budget: Budget | None = None,
        record_series: bool = False,
        block_steps: int = 4096,
    ) -> None:
        self.gen = gen
        self.detector = detector
        self.profile = profile
        self.thread_order = thread_order
        self.budget = budget
        self.record_series = record_series
        self.block_steps = block_steps
        self.runs_simulated = 0
        self.runs_extrapolated = 0
        self.steady_hits = 0
        #: live stat-capture state (see ``_begin_capture``)
        self._saved_counters: tuple | None = None
        self._cap_scalars: tuple[int, ...] = ()
        spr = gen.iteration_space.steps_per_chunk_run
        p = profile.period_runs
        # Window sizing: big enough that one window amortizes the
        # vectorized detector's per-call cost (~a few hundred lockstep
        # steps), small enough that an execution holds many windows —
        # detection latency, and therefore the simulated prefix, is one
        # window granule.
        target_steps = max(spr, 256)
        batch = max(1, target_steps // max(p * spr, 1))
        batch = min(batch, max(1, profile.runs_per_exec // (8 * p)))
        #: detection-window size in chunk runs (a multiple of the period)
        self.window_runs = batch * p
        # In the eviction regime (array footprint exceeds the per-thread
        # stack capacity) the first ~capacity/lines-per-run chunk runs of
        # every execution are a warm-up: residual lines from the cold
        # cache (or the previous execution) are still being evicted, so
        # boundary states cannot be shift-isomorphic yet even though the
        # stat deltas and stack sizes already look steady.  Estimating
        # that horizon up front avoids burning fingerprint backoff on
        # provably-premature attempts; it is purely a scheduling hint —
        # correctness never depends on it.
        footprint = sum(
            e - s + 1
            for s, e in zip(
                profile.array_start_lines, profile.array_end_lines
            )
        )
        shift_total = sum(abs(d) for d in profile.line_shifts)
        self.first_attempt_window = 2
        if footprint > detector.stack_lines and shift_total > 0:
            warmup_runs = detector.stack_lines * p // shift_total
            self.first_attempt_window = max(
                2, warmup_runs // self.window_runs + 1
            )

    # -- simulation --------------------------------------------------------------

    def _simulate_runs(
        self,
        exec_base_step: int,
        run_start: int,
        n_runs: int,
        series: list[int] | None,
    ) -> None:
        """Simulate ``n_runs`` chunk runs of the current execution."""
        gen = self.gen
        enum = gen.enum
        detector = self.detector
        write_mask = gen.write_mask
        spr = gen.iteration_space.steps_per_chunk_run
        num_threads = gen.num_threads
        thread_order = self.thread_order
        stats = detector.stats
        lines_counter = get_registry().counter(
            "ownership_line_ids", "line ids generated by the ownership stage"
        ).labels(kernel=gen.nest.name)
        start = exec_base_step + run_start * spr
        stop = start + n_runs * spr
        stride = max(spr, (self.block_steps // spr) * spr)
        for s0 in range(start, stop, stride):
            if self.budget is not None:
                self.budget.check_deadline(
                    f"steady-state analysis of {gen.nest.name}"
                )
            s1 = min(s0 + stride, stop)
            # Same span/counter contract as OwnershipListGenerator.blocks —
            # the runner materializes its own (larger) blocks for batching.
            with span("ownership.block", start_step=s0) as sp:
                lines = tuple(
                    gen.lines_for_env(enum.env_block(t, s0, s1))
                    for t in range(num_threads)
                )
                n_ids = sum(mat.size for mat in lines)
                sp.set(line_ids=n_ids)
            lines_counter.inc(n_ids)
            if series is None:
                detector.process_block(
                    lines, write_mask, thread_order=thread_order
                )
            else:
                # Sample cumulative FS cases at every run boundary.
                for off in range(0, s1 - s0, spr):
                    sub = tuple(m[off : off + spr] for m in lines)
                    detector.process_block(
                        sub, write_mask, thread_order=thread_order
                    )
                    series.append(stats.fs_cases)
        self.runs_simulated += n_runs

    # -- window accounting --------------------------------------------------------

    def _scalar_snapshot(self) -> tuple[int, ...]:
        st = self.detector.stats
        return tuple(getattr(st, name) for name in _SCALARS)

    def _begin_capture(self) -> None:
        """Start O(Δ) stat capture by swapping in fresh counters.

        Diffing dict snapshots would cost O(|accumulated stats|) per
        fingerprint attempt (the per-line counter keeps growing for the
        whole analysis); routing the window's increments into fresh
        counters makes both capture and delta extraction proportional to
        the window itself.
        """
        st = self.detector.stats
        self._saved_counters = (st.fs_by_thread, st.fs_by_line, st.fs_by_pair)
        st.fs_by_thread = Counter()
        st.fs_by_line = Counter()
        st.fs_by_pair = Counter()
        self._cap_scalars = self._scalar_snapshot()

    def _end_capture(self) -> tuple[dict, dict, dict]:
        """Fold captured counters back; returns the window's deltas."""
        st = self.detector.stats
        bt, bl, bp = st.fs_by_thread, st.fs_by_line, st.fs_by_pair
        sbt, sbl, sbp = self._saved_counters
        sbt.update(bt)
        sbl.update(bl)
        sbp.update(bp)
        st.fs_by_thread, st.fs_by_line, st.fs_by_pair = sbt, sbl, sbp
        self._saved_counters = None
        return bt, bl, bp

    def _captured_delta(
        self, series: list[int] | None, window_runs: int
    ) -> _WindowDelta:
        scalars0 = self._cap_scalars
        scalars = tuple(
            b - a for a, b in zip(scalars0, self._scalar_snapshot())
        )
        by_thread, by_line, by_pair = self._end_capture()
        per_run: list[int] | None = None
        if series is not None:
            window = series[-window_runs:]
            base = (
                series[-window_runs - 1]
                if len(series) > window_runs
                else scalars0[_SCALARS.index("fs_cases")]
            )
            per_run = [b - a for a, b in zip([base] + window[:-1], window)]
        return _WindowDelta(
            scalars, dict(by_thread), dict(by_line), dict(by_pair), per_run
        )

    def _extrapolate(
        self,
        delta: _WindowDelta,
        windows: int,
        window_runs: int,
        series: list[int] | None,
    ) -> None:
        """Apply ``windows`` exact repetitions of the captured window."""
        st = self.detector.stats
        for name, v in zip(_SCALARS, delta.scalars):
            setattr(st, name, getattr(st, name) + v * windows)
        for t, cnt in delta.by_thread.items():
            st.fs_by_thread[t] += cnt * windows
        for pair, cnt in delta.by_pair.items():
            st.fs_by_pair[pair] += cnt * windows
        periods_per_window = window_runs // self.profile.period_runs
        by_line = st.fs_by_line
        items = delta.by_line
        if items:
            n = len(items)
            lines = np.fromiter(items.keys(), np.int64, count=n)
            cnts = np.fromiter(items.values(), np.int64, count=n)
            d = self.profile.shift_of_arrays(lines) * periods_per_window
            zero = d == 0
            if zero.any():
                for ln, c in zip(
                    lines[zero].tolist(), cnts[zero].tolist()
                ):
                    by_line[ln] += c * windows
            moving = ~zero
            if moving.any():
                # All (line + j·d) targets at once, aggregated densely:
                # the targets of one window tile a contiguous band, so a
                # bincount over the offset range beats per-key updates.
                tgt = (
                    lines[moving][:, None]
                    + d[moving][:, None]
                    * np.arange(1, windows + 1, dtype=np.int64)
                ).ravel()
                wts = np.repeat(cnts[moving], windows)
                lo = int(tgt.min())
                acc = np.bincount(tgt - lo, weights=wts)
                for off in np.flatnonzero(acc).tolist():
                    by_line[lo + off] += int(acc[off])
        if series is not None and delta.per_run_fs is not None:
            tiled = np.tile(
                np.asarray(delta.per_run_fs, dtype=np.int64), windows
            ).cumsum()
            series.extend((tiled + series[-1]).tolist())
        # Advance the cache state to where full simulation would be.
        self.detector.shift_lines(
            rename_arrays=self.profile.renamer_arrays(
                windows * periods_per_window
            )
        )
        self.runs_extrapolated += windows * window_runs

    # -- driver -------------------------------------------------------------------

    def _run_exec(
        self, base: int, E: int, series: list[int] | None, hits, skipped
    ) -> None:
        """One execution of the parallel loop, with early-exit detection.

        Detection is staged so the steady path costs almost nothing when
        periodicity never materializes:

        1. every window, compare the 9 scalar stat deltas against the
           previous window's (a tuple compare) and the per-thread stack
           *sizes* (an ``O(T)`` equilibrium proxy: during LRU warm-up
           sizes grow monotonically, so no hashing happens until the
           footprint saturates);
        2. while both repeat, fingerprint the canonical cache state at
           boundaries with exponential backoff — a kernel whose counters
           are periodic but whose state never converges (e.g. a
           footprint that fits the cache, where the LRU wrap position
           drifts) costs only ``O(log windows)`` hashes; in the eviction
           regime attempts further wait out the estimated warm-up
           horizon (see ``first_attempt_window``);
        3. each attempt also snapshots the full stat state, so two
           boundaries with equal canonical fingerprints — which prove
           the states are shift-isomorphic — immediately yield the
           repeat unit (stats now − stats at the matching boundary) and
           the remainder is closed over all remaining whole units with
           no further simulation; the ragged tail is simulated.

        Step 3's exactness needs no delta verification at all: equal
        canonical fingerprints mean every future unit is the shifted
        image of the captured one (detector transitions commute with
        line renaming) — the delta comparisons only gate *when* hashing
        is worth attempting.
        """
        P = self.window_runs
        p = self.profile.period_runs
        stacks = self.detector._stacks
        r = 0
        # Bulk-simulate the estimated warm-up (minus the two windows the
        # detection chain needs as context) in one big-block call —
        # detection bookkeeping is pointless before isomorphism is even
        # possible, and bigger blocks amortize the vectorized core.
        warm = max(self.first_attempt_window - 2, 0) * P
        if warm and warm + 2 * P <= E:
            self._simulate_runs(base, 0, warm, series)
            r = warm
        prev_scalars: tuple[int, ...] | None = None
        prev_sizes: tuple[int, ...] | None = None
        pending_fp: bytes | None = None
        pending_r = -1
        next_attempt = self.first_attempt_window
        fp_gap = 1
        while r + P <= E:
            before = self._scalar_snapshot()
            self._simulate_runs(base, r, P, series)
            r += P
            window_idx = r // P
            after = self._scalar_snapshot()
            delta_s = tuple(b - a for a, b in zip(before, after))
            sizes = tuple(len(st) for st in stacks)
            if (
                prev_scalars is None
                or delta_s != prev_scalars
                or sizes != prev_sizes
            ):
                prev_scalars = delta_s
                prev_sizes = sizes
                if pending_fp is not None:
                    self._end_capture()
                pending_fp = None
                pending_r = -1
                continue
            prev_scalars = delta_s
            prev_sizes = sizes
            if window_idx < next_attempt:
                continue
            fp = self.detector.state_fingerprint(
                canon_arrays=self.profile.canon_arrays(r // p)
            )
            if pending_fp is None or fp != pending_fp:
                if pending_fp is not None:
                    fp_gap *= 2  # state not converged yet: back off
                    self._end_capture()
                pending_fp = fp
                pending_r = r
                self._begin_capture()
                next_attempt = window_idx + fp_gap
                continue
            # States at pending_r and r are shift-isomorphic: the runs
            # in between are the repeat unit, already simulated and
            # captured — close the remainder exactly with no further
            # simulation.
            D = r - pending_r
            windows = (E - r) // D
            if windows == 0:
                # Remainder shorter than the unit: tighten the pending
                # boundary so a later (smaller-gap) match can still win.
                self._end_capture()
                pending_fp = fp
                pending_r = r
                self._begin_capture()
                continue
            delta = self._captured_delta(series, D)
            self._extrapolate(delta, windows, D, series)
            r += windows * D
            self.steady_hits += 1
            hits.inc()
            skipped.inc(windows * D)
            break
        if self._saved_counters is not None:
            self._end_capture()
        if r < E:
            self._simulate_runs(base, r, E - r, series)

    def run(self) -> tuple[int, int, list[int] | None]:
        """Execute the whole loop; returns (simulated, extrapolated, series)."""
        series: list[int] | None = [] if self.record_series else None
        profile = self.profile
        E = profile.runs_per_exec
        spr = self.gen.iteration_space.steps_per_chunk_run
        kernel = self.gen.nest.name
        registry = get_registry()
        hits = registry.counter(
            "steadystate_hits_total",
            "periodicity detections that triggered exact extrapolation",
        ).labels(kernel=kernel)
        skipped = registry.counter(
            "steadystate_runs_extrapolated_total",
            "chunk runs closed by exact steady-state extrapolation",
        ).labels(kernel=kernel)
        with span(
            "model.steadystate", kernel=kernel,
            period_runs=profile.period_runs, window_runs=self.window_runs,
        ) as sp:
            for o in range(profile.execs):
                self._run_exec(o * E * spr, E, series, hits, skipped)
            sp.set(
                runs_simulated=self.runs_simulated,
                runs_extrapolated=self.runs_extrapolated,
                hits=self.steady_hits,
            )
        return self.runs_simulated, self.runs_extrapolated, series
