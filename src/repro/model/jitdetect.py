"""JIT-compiled detector core: the ``engine="jit"`` tier.

:class:`JitFSDetector` compiles the flattened lockstep event stream
into a single native per-event loop with Numba ``@njit(cache=True)``.
Where :class:`~repro.model.fastdetect.FastFSDetector` decomposes a
block into per-line segments (and must fall back whenever evictions
could interact with in-block accesses), the JIT kernel simply *is* the
reference automaton — per-thread LRU stacks as doubly-linked slot
arrays, int64 holder/writer bitmask directory, manual popcount FS
accounting — executed event by event at native speed.  That makes it

* **exact in every regime**: LRU thrashing, ``literal`` mode and
  capacity-1 corner cases all run compiled instead of falling back to
  the scalar Python path;
* **bit-identical** to both other engines (asserted by the three-way
  matrix in ``tests/test_fastdetect.py`` / ``tests/test_jitdetect.py``).

Numba is an *optional* dependency.  The import is guarded: without it
``jit_available()`` is False, ``resolve_engine("jit")`` transparently
resolves to ``"fast"`` and nothing here is ever on a hot path — zero
new hard dependencies.  The kernel body is deliberately written as
nopython-compatible plain Python so its logic stays testable (and this
module importable) on numba-less installs; tests force the
interpreted kernel through :data:`_FORCE_PYTHON_KERNEL`.

A compile failure (missing LLVM, unsupported numba version, broken
cache dir) is *demoted*, never fatal: the first failing block logs
``REPRO-M104``, bumps ``detector_jit_demotions_total`` and the
detector permanently continues through the fast path.

How a block runs
----------------
1. flatten the block to global-timestamp order (step-major, then
   position in the thread order, then program order of references) —
   exactly the reference interleaving;
2. densify line ids: ``np.unique`` over the block's events ∪ every
   resident stack line gives a compact ``[0, G)`` domain so the kernel
   indexes flat arrays instead of hashing;
3. run the compiled automaton: per-thread LRU stacks live in
   ``(T, cap+1)`` linked slot arrays with an ``O(1)`` ``where[T, G]``
   membership map; holders/writers are int64 bitmasks (``T ≤ 63``);
4. scatter the final state back: stacks rebuild their ``OrderedDict``s
   in LRU→MRU order, the holder/writer dicts are replaced wholesale
   from the mask arrays (every line with a live bit is resident, hence
   in the dense domain).

``export_state``/``import_state`` on the base detector (added for the
segment-parallel runner, :mod:`repro.model.simparallel`) round-trip
exactly this stack representation.
"""

from __future__ import annotations

import importlib.util
import threading
import time
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.model.detector import FSDetector
from repro.model.fastdetect import (
    MAX_FAST_THREADS,
    MIN_FAST_EVENTS,
    FastFSDetector,
)
from repro.model.stackdist import MODIFIED, SHARED
from repro.obs import get_registry, span
from repro.util import get_logger

__all__ = [
    "NUMBA_AVAILABLE",
    "JitFSDetector",
    "jit_available",
    "jit_compile_seconds",
    "warmup_jit",
]

logger = get_logger(__name__)


def _numba_installed() -> bool:
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


#: Whether the optional ``numba`` package is importable.  Checked via
#: ``find_spec`` so merely *resolving* an engine never pays numba's
#: multi-second import; the real import is deferred to first compile.
NUMBA_AVAILABLE = _numba_installed()

#: The ``where[T, G]`` membership map is the kernel's only superlinear
#: allocation; blocks whose ``T × (events + resident)`` footprint would
#: exceed this many int32 cells route through the fast path instead
#: (which subdivides on the step axis).
MAX_WHERE_CELLS = 1 << 26

#: Test escape hatch: force the interpreted (plain-Python) kernel so
#: the automaton's logic is exercised on numba-less installs.  Never
#: set in production — the interpreted kernel is *slower* than the
#: fast path.
_FORCE_PYTHON_KERNEL = False

_KERNEL = None
_KERNEL_FAILED: Exception | None = None
_COMPILE_SECONDS: float | None = None
_COMPILE_LOCK = threading.Lock()


def _sim_events(
    ev_line,
    ev_thr,
    ev_w,
    T,
    G,
    cap,
    invalidate,
    init_lines,
    init_mod,
    init_sizes,
    holders,
    writers,
    out_counts,
    out_by_thread,
    out_by_pair,
    out_by_line,
    out_lines,
    out_mod,
    out_sizes,
):
    """The detector automaton over a dense event stream (nopython-safe).

    Mirrors ``FSDetector._process_one`` exactly, in both coherence
    modes, including per-event LRU eviction.  ``out_counts`` receives
    ``[fs, fs_read, fs_write, misses, invalidations, downgrades,
    evictions]``; final stacks come back LRU→MRU in ``out_lines`` /
    ``out_mod`` / ``out_sizes``; ``holders``/``writers`` end as the
    final per-line bitmasks.
    """
    nslots = cap + 1
    slot_line = np.zeros((T, nslots), dtype=np.int64)
    slot_mod = np.zeros((T, nslots), dtype=np.uint8)
    slot_prev = np.full((T, nslots), -1, dtype=np.int32)
    slot_next = np.full((T, nslots), -1, dtype=np.int32)
    head = np.full(T, -1, dtype=np.int32)  # LRU end
    tail = np.full(T, -1, dtype=np.int32)  # MRU end
    size = np.zeros(T, dtype=np.int64)
    free_head = np.zeros(T, dtype=np.int32)
    where = np.full((T, G), -1, dtype=np.int32)

    for t in range(T):
        for s in range(nslots - 1):
            slot_next[t, s] = s + 1
        slot_next[t, nslots - 1] = -1
        free_head[t] = 0

    # Seed the initial stacks (rows arrive LRU→MRU) and directory.
    for t in range(T):
        bit = np.int64(1) << t
        for i in range(init_sizes[t]):
            g = init_lines[t, i]
            s = free_head[t]
            free_head[t] = slot_next[t, s]
            slot_line[t, s] = g
            slot_mod[t, s] = init_mod[t, i]
            slot_prev[t, s] = tail[t]
            slot_next[t, s] = -1
            if tail[t] >= 0:
                slot_next[t, tail[t]] = s
            else:
                head[t] = s
            tail[t] = s
            where[t, g] = s
            size[t] += 1
            holders[g] |= bit
            if init_mod[t, i] != 0:
                writers[g] |= bit

    fs_cases = 0
    fs_read = 0
    fs_write = 0
    misses = 0
    invalidations = 0
    downgrades = 0
    evictions = 0

    for e in range(ev_line.shape[0]):
        g = ev_line[e]
        t = ev_thr[e]
        w = ev_w[e]
        bit = np.int64(1) << t
        s_idx = where[t, g]
        hit = s_idx >= 0
        prev_mod = hit and slot_mod[t, s_idx] != 0

        writers_mask = writers[g]
        foreign = writers_mask & ~bit
        if invalidate != 0:
            count_fs = foreign != 0
        else:  # literal: φ only on insertion into the own state
            count_fs = (not hit) and foreign != 0
        if count_fs:
            n = 0
            rem = foreign
            while rem != 0:
                low = rem & (-rem)
                k = 0
                v = low
                while v > 1:
                    v >>= 1
                    k += 1
                out_by_pair[k * T + t] += 1
                n += 1
                rem ^= low
            fs_cases += n
            if w:
                fs_write += n
            else:
                fs_read += n
            out_by_thread[t] += n
            out_by_line[g] += n
        if not hit:
            misses += 1

        # Pop the own copy (it re-enters at MRU below).
        if hit:
            p = slot_prev[t, s_idx]
            nx = slot_next[t, s_idx]
            if p >= 0:
                slot_next[t, p] = nx
            else:
                head[t] = nx
            if nx >= 0:
                slot_prev[t, nx] = p
            else:
                tail[t] = p
            slot_next[t, s_idx] = free_head[t]
            free_head[t] = s_idx
            where[t, g] = -1
            size[t] -= 1

        new_mod = False
        if invalidate != 0:
            if w:
                # Invalidate every remote copy.
                remote = holders[g] & ~bit
                while remote != 0:
                    low = remote & (-remote)
                    k = 0
                    v = low
                    while v > 1:
                        v >>= 1
                        k += 1
                    rs = where[k, g]
                    p = slot_prev[k, rs]
                    nx = slot_next[k, rs]
                    if p >= 0:
                        slot_next[k, p] = nx
                    else:
                        head[k] = nx
                    if nx >= 0:
                        slot_prev[k, nx] = p
                    else:
                        tail[k] = p
                    slot_next[k, rs] = free_head[k]
                    free_head[k] = rs
                    where[k, g] = -1
                    size[k] -= 1
                    invalidations += 1
                    remote ^= low
                holders[g] = bit
                writers[g] = bit
                new_mod = True
            else:
                # Downgrade remote Modified copies to Shared.
                if foreign != 0:
                    rem = foreign
                    while rem != 0:
                        low = rem & (-rem)
                        k = 0
                        v = low
                        while v > 1:
                            v >>= 1
                            k += 1
                        rs = where[k, g]
                        if rs >= 0:
                            slot_mod[k, rs] = 0
                        downgrades += 1
                        rem ^= low
                    writers[g] = writers_mask & ~foreign
                holders[g] |= bit
                new_mod = prev_mod
        else:  # literal
            holders[g] |= bit
            if w:
                writers[g] = writers_mask | bit
                new_mod = True
            else:
                new_mod = prev_mod

        # Insert at MRU.
        s = free_head[t]
        free_head[t] = slot_next[t, s]
        slot_line[t, s] = g
        slot_mod[t, s] = 1 if new_mod else 0
        slot_prev[t, s] = tail[t]
        slot_next[t, s] = -1
        if tail[t] >= 0:
            slot_next[t, tail[t]] = s
        else:
            head[t] = s
        tail[t] = s
        where[t, g] = s
        size[t] += 1

        if size[t] > cap:
            hs = head[t]
            evg = slot_line[t, hs]
            nx = slot_next[t, hs]
            head[t] = nx
            if nx >= 0:
                slot_prev[t, nx] = -1
            else:
                tail[t] = -1
            slot_next[t, hs] = free_head[t]
            free_head[t] = hs
            where[t, evg] = -1
            size[t] -= 1
            holders[evg] &= ~bit
            writers[evg] &= ~bit
            evictions += 1

    out_counts[0] = fs_cases
    out_counts[1] = fs_read
    out_counts[2] = fs_write
    out_counts[3] = misses
    out_counts[4] = invalidations
    out_counts[5] = downgrades
    out_counts[6] = evictions

    for t in range(T):
        i = 0
        s = head[t]
        while s >= 0:
            out_lines[t, i] = slot_line[t, s]
            out_mod[t, i] = slot_mod[t, s]
            s = slot_next[t, s]
            i += 1
        out_sizes[t] = i


def _demote(exc: Exception) -> None:
    """Permanently demote the jit tier after a compile failure.

    Demotion, not death: the fast path produces identical results, so
    a broken numba install costs speed only.  ``REPRO-M104`` in the log
    line is the stable handle operators grep for (docs/RESILIENCE.md).
    """
    global _KERNEL_FAILED
    _KERNEL_FAILED = exc
    get_registry().counter(
        "detector_jit_demotions_total",
        "jit-tier compile failures demoted to the fast engine",
    ).inc()
    logger.warning(
        "REPRO-M104: jit kernel compilation failed (%s: %s); "
        "demoting engine='jit' to 'fast' for this process",
        type(exc).__name__, exc,
    )


def _get_kernel():
    """The compiled kernel, the interpreted one (tests), or ``None``.

    ``None`` means "use the fast path": numba missing, or a previous
    compile failure demoted the tier.  Compilation itself is lazy and
    happens on the first kernel *call* (see :func:`_call_kernel`); this
    only builds the dispatcher.
    """
    global _KERNEL
    if _FORCE_PYTHON_KERNEL:
        return _sim_events
    if _KERNEL is not None:
        return _KERNEL
    if not NUMBA_AVAILABLE or _KERNEL_FAILED is not None:
        return None
    with _COMPILE_LOCK:
        if _KERNEL is not None:  # pragma: no cover - racing second caller
            return _KERNEL
        try:
            import numba

            _KERNEL = numba.njit(cache=True, nogil=True)(_sim_events)
        except Exception as exc:  # pragma: no cover - needs broken numba
            _demote(exc)
            return None
    return _KERNEL


def _call_kernel(kernel, args) -> None:
    """Invoke the kernel, timing the first (compiling) call."""
    global _COMPILE_SECONDS
    if kernel is _sim_events or _COMPILE_SECONDS is not None:
        kernel(*args)
        return
    with _COMPILE_LOCK:
        if _COMPILE_SECONDS is not None:
            kernel(*args)
            return
        with span("detector.jit_compile"):
            t0 = time.perf_counter()
            kernel(*args)
            _COMPILE_SECONDS = time.perf_counter() - t0
        get_registry().gauge(
            "detector_jit_compile_seconds",
            "wall time of the jit kernel's first (compiling) call",
        ).set(_COMPILE_SECONDS)


def jit_available() -> bool:
    """Whether ``engine="jit"`` would actually run compiled.

    False when numba is not installed or a compile failure demoted the
    tier; :func:`repro.model.fastdetect.resolve_engine` then resolves
    ``"jit"`` to ``"fast"`` so callers never need to care.
    """
    if _FORCE_PYTHON_KERNEL:
        return True
    return NUMBA_AVAILABLE and _KERNEL_FAILED is None


def jit_compile_seconds() -> float | None:
    """Wall seconds the first (compiling) kernel call took, if any.

    ``@njit(cache=True)`` persists the compiled artifact, so on a warm
    cache this is milliseconds; benchmarks record it per row.
    """
    return _COMPILE_SECONDS


def warmup_jit() -> float | None:
    """Compile (or load from cache) the kernel on a trivial trace.

    Returns the first-call wall seconds, or ``None`` when the jit tier
    is unavailable.  Services call this at boot so the first tenant
    request does not pay the compile; the doctor check calls it to
    prove the toolchain works.
    """
    if not jit_available():
        return None
    det = JitFSDetector(2, 4)
    trace = np.arange(2 * MIN_FAST_EVENTS, dtype=np.int64).reshape(-1, 2) % 7
    det.process_block(
        (trace, trace[::-1].copy()), np.array([True, False])
    )
    if not jit_available():  # demoted by the warmup itself
        return None
    return _COMPILE_SECONDS if not _FORCE_PYTHON_KERNEL else 0.0


class JitFSDetector(FastFSDetector):
    """Drop-in detector running blocks through the compiled automaton.

    Inherits the full :class:`FastFSDetector` machinery — blocks the
    kernel should not take (tiny blocks, >63 threads, oversized dense
    domains, demoted tier) use the vectorized/scalar paths, so the
    detector is safe to use unconditionally.  ``jit_blocks`` counts
    blocks the kernel processed.
    """

    def __init__(
        self, num_threads: int, stack_lines: int, mode: str = "invalidate"
    ) -> None:
        super().__init__(num_threads, stack_lines, mode=mode)
        #: blocks processed by the compiled (or forced-python) kernel
        self.jit_blocks = 0
        self._jit_counter = get_registry().counter(
            "detector_jit_blocks_total",
            "lockstep blocks processed by the jit-compiled detector core",
        ).labels(mode=mode)

    def _process_block(
        self,
        thread_lines: Sequence[np.ndarray],
        write_mask: np.ndarray,
        thread_order: Sequence[int] | None = None,
    ) -> None:
        kernel = _get_kernel()
        if kernel is None or self.num_threads > MAX_FAST_THREADS:
            super()._process_block(thread_lines, write_mask, thread_order)
            return
        total = sum(m.size for m in thread_lines)
        if total < MIN_FAST_EVENTS:
            # Below the crossover the scalar loop beats any array setup.
            super()._process_block(thread_lines, write_mask, thread_order)
            return
        resident = sum(len(st) for st in self._stacks)
        if self.num_threads * (total + resident) > MAX_WHERE_CELLS:
            # The dense membership map would not fit; the fast path
            # subdivides along the step axis instead.
            super()._process_block(thread_lines, write_mask, thread_order)
            return
        order = tuple(thread_order) if thread_order is not None else tuple(
            range(self.num_threads)
        )
        if sorted(order) != list(range(self.num_threads)):
            from repro.resilience.errors import ModelError

            raise ModelError("thread_order must be a permutation of thread ids")
        steps0, accesses0 = self.stats.steps, self.stats.accesses
        try:
            self._process_block_jit(thread_lines, write_mask, order, kernel)
            self.jit_blocks += 1
            self._jit_counter.inc()
        except Exception as exc:
            if _FORCE_PYTHON_KERNEL or _KERNEL_FAILED is not None:
                raise
            # A compile error surfaces on the first kernel call, before
            # it touches any state; only the wrapper's step/access
            # tallies precede it, so roll those back and rerun the
            # whole block through the fast path.
            _demote(exc)
            self.stats.steps, self.stats.accesses = steps0, accesses0
            super()._process_block(thread_lines, write_mask, thread_order)

    # -- the kernel wrapper -------------------------------------------------

    def _process_block_jit(
        self,
        thread_lines: Sequence[np.ndarray],
        write_mask: np.ndarray,
        order: tuple[int, ...],
        kernel,
    ) -> None:
        stats = self.stats
        T = self.num_threads
        cap = self.stack_lines
        writes = np.asarray(write_mask, dtype=bool)
        R = int(writes.size)
        n_steps = max((len(m) for m in thread_lines), default=0)
        stats.steps += n_steps
        if R == 0 or n_steps == 0:
            return

        # 1. Flatten to the reference interleaving: step-major, then
        # position in the thread order, then program order.
        order_arr = np.asarray(order, dtype=np.int64)
        lines3 = np.empty((n_steps, T, R), dtype=np.int64)
        valid = np.zeros((n_steps, T), dtype=bool)
        for pos, t in enumerate(order):
            mat = thread_lines[t]
            k = len(mat)
            if k:
                lines3[:k, pos, :] = mat
                valid[:k, pos] = True
        ev_line = lines3.reshape(-1)
        ev_thr = np.tile(np.repeat(order_arr, R), n_steps)
        ev_w = np.tile(writes, T * n_steps)
        if not valid.all():
            mask = np.repeat(valid.reshape(-1), R)
            ev_line = ev_line[mask]
            ev_thr = ev_thr[mask]
            ev_w = ev_w[mask]
        stats.accesses += int(ev_line.size)
        if ev_line.size == 0:
            return

        # 2. Dense line domain: events ∪ resident stack lines.
        res = [
            np.fromiter(st.keys(), np.int64, count=len(st))
            for st in self._stacks
            if st
        ]
        uniq = np.unique(
            np.concatenate([ev_line] + res) if res else ev_line
        )
        G = int(uniq.size)
        ev_g = np.searchsorted(uniq, ev_line).astype(np.int64)

        init_lines = np.zeros((T, cap), dtype=np.int64)
        init_mod = np.zeros((T, cap), dtype=np.uint8)
        init_sizes = np.zeros(T, dtype=np.int64)
        for t, st in enumerate(self._stacks):
            n = len(st)
            if n:
                keys = np.fromiter(st.keys(), np.int64, count=n)
                init_lines[t, :n] = np.searchsorted(uniq, keys)
                init_mod[t, :n] = np.fromiter(
                    (1 if v == MODIFIED else 0 for v in st.values()),
                    np.uint8,
                    count=n,
                )
            init_sizes[t] = n

        holders = np.zeros(G, dtype=np.int64)
        writers = np.zeros(G, dtype=np.int64)
        out_counts = np.zeros(8, dtype=np.int64)
        out_by_thread = np.zeros(T, dtype=np.int64)
        out_by_pair = np.zeros(T * T, dtype=np.int64)
        out_by_line = np.zeros(G, dtype=np.int64)
        out_lines = np.zeros((T, cap), dtype=np.int64)
        out_mod = np.zeros((T, cap), dtype=np.uint8)
        out_sizes = np.zeros(T, dtype=np.int64)

        # 3. Run the automaton.
        _call_kernel(
            kernel,
            (
                ev_g, ev_thr, ev_w,
                np.int64(T), np.int64(G), np.int64(cap),
                np.int64(1 if self.mode == "invalidate" else 0),
                init_lines, init_mod, init_sizes,
                holders, writers,
                out_counts, out_by_thread, out_by_pair, out_by_line,
                out_lines, out_mod, out_sizes,
            ),
        )

        # 4. Scatter the results back.
        stats.fs_cases += int(out_counts[0])
        stats.fs_read_cases += int(out_counts[1])
        stats.fs_write_cases += int(out_counts[2])
        stats.misses += int(out_counts[3])
        stats.invalidations += int(out_counts[4])
        stats.downgrades += int(out_counts[5])
        stats.evictions += int(out_counts[6])

        ul = uniq.tolist()
        by_thread = stats.fs_by_thread
        for t in np.flatnonzero(out_by_thread).tolist():
            by_thread[t] += int(out_by_thread[t])
        by_line = stats.fs_by_line
        for g in np.flatnonzero(out_by_line).tolist():
            by_line[ul[g]] += int(out_by_line[g])
        by_pair = stats.fs_by_pair
        for v in np.flatnonzero(out_by_pair).tolist():
            by_pair[(v // T, v % T)] += int(out_by_pair[v])

        stacks = self._stacks
        for t in range(T):
            n = int(out_sizes[t])
            if n:
                keys = uniq[out_lines[t, :n]].tolist()
                mods = out_mod[t, :n].tolist()
                stacks[t] = OrderedDict(
                    zip(keys, (MODIFIED if m else SHARED for m in mods))
                )
            else:
                stacks[t] = OrderedDict()
        # Every line with a live bit is resident in some stack, hence in
        # the dense domain — replacing the dicts wholesale is exact
        # (dropped entries all carried zero masks; reads default to 0).
        self._holders = dict(zip(ul, holders.tolist()))
        self._writers = dict(zip(ul, writers.tolist()))
        self._mru_line = [None] * T
        self._mru_mod = [False] * T
