"""Segment-parallel simulation: the detector itself across cores.

The lockstep access stream from global step ``s`` onward is a pure
function of ``s`` (:meth:`~repro.model.schedule.LockstepEnumerator.
env_block` gives random access), and the detector's future behaviour is
fully determined by its per-thread stacks.  So a chunk-run series
splits into *segments* that are independent given a starting state —
the structure PPT-Multicore exploits to scale analytical cache models —
and the only problem is that segment ``i``'s true starting state is
produced by segment ``i−1``.

The runner solves that with **speculative cold starts + exact
verification**, so parallelism never changes a single counter:

1. every segment is fanned to a :class:`~repro.engine.pool.WorkerPool`
   worker that simulates it from a *cold* (empty) detector;
2. in the eviction regime the cold state converges to the true state:
   once every stack has filled to capacity, the state is a function of
   the recent access suffix, not of the start.  When a worker observes
   all stacks full at a block boundary (its *determination point*), it
   fingerprints the state, discards the speculative prefix counters,
   and keeps exact stat deltas + its end state
   (:meth:`~repro.model.detector.FSDetector.export_state`) from there;
3. the parent merges segments **in input order**: it simulates each
   segment's prefix serially from the true state up to the worker's
   determination point, compares fingerprints, and on a match adopts
   the worker's deltas and end state wholesale — bit-identical to
   having simulated the rest itself.  A mismatch (or a worker that
   never determined, or crashed) just re-simulates that segment
   serially: correctness is unconditional, parallelism is the
   optimistic case.

Segment 0 needs no determination — its cold start *is* the true start.

The ``--sim-jobs`` knob rides in job payloads only (never cache keys),
like the detector-engine knob: results are invariant under it.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.model.detector import FSDetector, FSStats
from repro.model.fastdetect import make_detector
from repro.model.ownership import OwnershipListGenerator
from repro.obs import get_registry, span
from repro.resilience.budget import Budget
from repro.util import get_logger

__all__ = [
    "MIN_SEGMENT_RUNS",
    "plan_segments",
    "run_segment_job",
    "segment_eligible",
    "simulate_segmented",
]

logger = get_logger(__name__)

#: Segments shorter than this many chunk runs are not worth a worker:
#: the cold warm-up the parent must re-simulate serially would eat the
#: whole segment.  ``plan_segments`` shrinks the segment count (down to
#: "don't engage") rather than emit shorter segments.
MIN_SEGMENT_RUNS = 16


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def plan_segments(
    total_steps: int,
    steps_per_run: int,
    sim_jobs: int,
    min_segment_runs: int = MIN_SEGMENT_RUNS,
) -> list[tuple[int, int]]:
    """Split ``[0, total_steps)`` into run-aligned segment bounds.

    Aims for ``sim_jobs`` equal segments, shrinking the count so no
    segment falls below ``min_segment_runs`` chunk runs.  Returns a
    single segment (= "don't engage") when the work is too small.
    """
    if total_steps <= 0:
        return []
    spr = max(steps_per_run, 1)
    runs = _ceil_div(total_steps, spr)
    nseg = max(1, min(sim_jobs, runs // max(min_segment_runs, 1)))
    if nseg < 2:
        return [(0, total_steps)]
    per = _ceil_div(runs, nseg)
    bounds: list[tuple[int, int]] = []
    r = 0
    while r < runs:
        r2 = min(r + per, runs)
        bounds.append((r * spr, min(r2 * spr, total_steps)))
        r = r2
    return bounds


def segment_eligible(
    gen: OwnershipListGenerator,
    stack_lines: int,
    sim_jobs: int,
    total_steps: int,
) -> bool:
    """Whether segment-parallel simulation can pay off here.

    Requires ≥2 plannable segments and an eviction-regime working set
    (total array lines exceeding the per-thread stack capacity) —
    without eviction pressure the stacks never fill, no worker can
    determine, and every segment would be re-simulated serially.
    """
    if sim_jobs < 2:
        return False
    spr = gen.iteration_space.steps_per_chunk_run
    if len(plan_segments(total_steps, spr, sim_jobs)) < 2:
        return False
    total_lines = sum(
        _ceil_div(arr.size_bytes(), gen.line_size)
        for arr in gen.space.arrays()
    )
    return total_lines > stack_lines


def _materialize(gen: OwnershipListGenerator, s0: int, s1: int) -> tuple:
    """Per-thread line matrices for global steps ``[s0, s1)``.

    Same span/counter contract as ``OwnershipListGenerator.blocks`` —
    segment simulation materializes its own blocks for random access.
    """
    enum = gen.enum
    with span("ownership.block", start_step=s0) as sp:
        lines = tuple(
            gen.lines_for_env(enum.env_block(t, s0, s1))
            for t in range(gen.num_threads)
        )
        n_ids = sum(mat.size for mat in lines)
        sp.set(line_ids=n_ids)
    get_registry().counter(
        "ownership_line_ids", "line ids generated by the ownership stage"
    ).labels(kernel=gen.nest.name).inc(n_ids)
    return lines


def _stride_of(gen: OwnershipListGenerator, steps_per_run: int) -> int:
    """Run-aligned processing stride (block batching, like steadystate)."""
    spr = max(steps_per_run, 1)
    return max(spr, (gen.enum.block_steps // spr) * spr)


def _simulate_range(
    gen: OwnershipListGenerator,
    detector: FSDetector,
    start: int,
    stop: int,
    thread_order: tuple[int, ...] | None,
    steps_per_run: int,
    series: list[int] | None,
    budget: Budget | None,
) -> None:
    """Serially simulate global steps ``[start, stop)`` on ``detector``.

    With ``series``, cumulative FS cases are sampled at every chunk-run
    boundary — identical granularity to the serial record-series path.
    """
    if stop <= start:
        return
    stats = detector.stats
    write_mask = gen.write_mask
    stride = _stride_of(gen, steps_per_run)
    for s0 in range(start, stop, stride):
        if budget is not None:
            budget.check_deadline(f"segmented analysis of {gen.nest.name}")
        s1 = min(s0 + stride, stop)
        lines = _materialize(gen, s0, s1)
        if series is None:
            detector.process_block(
                lines, write_mask, thread_order=thread_order
            )
        else:
            for off in range(0, s1 - s0, steps_per_run):
                sub = tuple(m[off:off + steps_per_run] for m in lines)
                detector.process_block(
                    sub, write_mask, thread_order=thread_order
                )
                series.append(stats.fs_cases)


def run_segment_job(job) -> dict:
    """Engine runner for ``model.segment`` jobs (executes in a worker).

    Simulates one segment from a cold detector, watching for the
    determination point (all stacks at capacity at a run-aligned block
    boundary).  Returns the determination step, the state fingerprint
    there, exact stat deltas from determination to segment end, the
    exported end state, and (optionally) the per-run FS series deltas —
    everything the parent needs to splice the segment in bit-exactly.

    ``determined_at`` is ``None`` when the stacks never filled; the
    parent then re-simulates the whole segment serially.
    """
    p = job.payload
    gen = OwnershipListGenerator(
        p["nest"],
        p["num_threads"],
        line_size=p["line_size"],
        space=p["space"],
        block_steps=p["block_steps"],
    )
    detector = make_detector(
        p["engine"], p["num_threads"], p["stack_lines"], mode=p["mode"]
    )
    seg_start, seg_stop = p["segment"]
    spr = int(p["steps_per_run"])
    thread_order = (
        tuple(p["thread_order"]) if p["thread_order"] is not None else None
    )
    cap = detector.stack_lines
    stats = detector.stats
    stacks = detector._stacks
    record_series = bool(p["record_series"])

    determined_at: int | None = None
    fingerprint: bytes | None = None
    base: tuple | None = None
    series: list[int] | None = None

    def begin_capture(step: int) -> None:
        nonlocal determined_at, fingerprint, base, series
        determined_at = step
        fingerprint = detector.state_fingerprint()
        base = tuple(getattr(stats, n) for n in FSStats._SCALARS)
        # Discard the speculative prefix's attribution outright; the
        # parent re-simulates it from the true state.
        stats.fs_by_thread = Counter()
        stats.fs_by_line = Counter()
        stats.fs_by_pair = Counter()
        if record_series:
            series = []

    if seg_start == 0:
        # Segment 0's cold start *is* the true start: capture from the
        # beginning, fingerprint of the empty state included.
        begin_capture(0)

    stride = _stride_of(gen, spr)
    for s0 in range(seg_start, seg_stop, stride):
        s1 = min(s0 + stride, seg_stop)
        lines = _materialize(gen, s0, s1)
        if series is None:
            detector.process_block(
                lines, gen.write_mask, thread_order=thread_order
            )
        else:
            for off in range(0, s1 - s0, spr):
                sub = tuple(m[off:off + spr] for m in lines)
                detector.process_block(
                    sub, gen.write_mask, thread_order=thread_order
                )
                series.append(stats.fs_cases - base[0])
        if (
            determined_at is None
            and s1 < seg_stop
            and all(len(st) == cap for st in stacks)
        ):
            begin_capture(s1)

    delta = None
    if determined_at is not None:
        delta = {
            "scalars": {
                n: getattr(stats, n) - b
                for n, b in zip(FSStats._SCALARS, base)
            },
            "by_thread": dict(stats.fs_by_thread),
            "by_line": dict(stats.fs_by_line),
            "by_pair": dict(stats.fs_by_pair),
        }
    return {
        "determined_at": determined_at,
        "fingerprint": fingerprint,
        "delta": delta,
        "state": detector.export_state() if determined_at is not None else None,
        "series": series,
    }


def _merge_delta(stats: FSStats, delta: dict) -> None:
    for name, value in delta["scalars"].items():
        setattr(stats, name, getattr(stats, name) + value)
    stats.fs_by_thread.update(delta["by_thread"])
    stats.fs_by_line.update(delta["by_line"])
    stats.fs_by_pair.update(delta["by_pair"])


def segment_jobs(
    gen: OwnershipListGenerator,
    detector: FSDetector,
    bounds: Sequence[tuple[int, int]],
    engine: str,
    thread_order: tuple[int, ...] | None,
    record_series: bool,
) -> list:
    """One ``model.segment`` job per segment, in step order.

    The spec is identity/labeling only — segment results carry whole
    detector states, so they go straight through the pool and never
    enter the result store (and ``sim_jobs`` stays out of cache keys).
    """
    from repro.engine import Job

    spr = gen.iteration_space.steps_per_chunk_run
    payload_common = {
        "nest": gen.nest,
        "space": gen.space,
        "num_threads": gen.num_threads,
        "line_size": gen.line_size,
        "block_steps": gen.enum.block_steps,
        "stack_lines": detector.stack_lines,
        "mode": detector.mode,
        "engine": engine,
        "thread_order": (
            list(thread_order) if thread_order is not None else None
        ),
        "steps_per_run": spr,
        "record_series": record_series,
    }
    jobs = []
    for s0, s1 in bounds:
        jobs.append(
            Job(
                kind="model.segment",
                spec={
                    "kernel": gen.nest.name,
                    "threads": gen.num_threads,
                    "mode": detector.mode,
                    "segment": [s0, s1],
                },
                payload={**payload_common, "segment": (s0, s1)},
                label=f"segment:{gen.nest.name}:{s0}-{s1}",
            )
        )
    return jobs


def simulate_segmented(
    gen: OwnershipListGenerator,
    detector: FSDetector,
    *,
    sim_jobs: int,
    engine: str,
    thread_order: tuple[int, ...] | None = None,
    max_steps: int | None = None,
    record_series: bool = False,
    budget: Budget | None = None,
    pool=None,
    segment_bounds: Sequence[tuple[int, int]] | None = None,
) -> list[int] | None:
    """Run the whole analysis segment-parallel onto ``detector``.

    Drop-in replacement for the serial block walk in
    :meth:`~repro.model.fsmodel.FalseSharingModel._analyze`: on return
    ``detector`` holds exactly the counters, breakdowns and end state a
    serial walk would have produced (verified per segment, re-simulated
    on any miss).  Returns the per-run cumulative FS series when
    ``record_series``, else ``None``.

    ``pool`` and ``segment_bounds`` are test seams: an inline
    single-worker pool makes merges deterministic to step through, and
    explicit bounds exercise arbitrary (run-aligned) split points.  The
    deadline budget is enforced in the parent between blocks/segments;
    workers are speculative and crash/fault-isolated by the pool (a
    failed worker costs a serial re-simulation, never the result).
    """
    from repro.engine.pool import WorkerPool

    spr = gen.iteration_space.steps_per_chunk_run
    total = gen.enum.max_steps
    if max_steps is not None:
        total = min(total, max_steps)
    bounds = (
        [(int(a), int(b)) for a, b in segment_bounds]
        if segment_bounds is not None
        else plan_segments(total, spr, sim_jobs)
    )
    series: list[int] | None = [] if record_series else None
    if not bounds:
        return series
    registry = get_registry()
    applied_counter = registry.counter(
        "detector_segments_parallel_total",
        "simulation segments spliced in from parallel workers (verified)",
    )
    resim_counter = registry.counter(
        "detector_segments_resim_total",
        "simulation segments re-simulated serially (no determination, "
        "fingerprint mismatch, or worker failure)",
    )
    if pool is None:
        pool = WorkerPool(workers=sim_jobs, retries=1)
    jobs = segment_jobs(
        gen, detector, bounds, engine, thread_order, record_series
    )
    with span(
        "model.simparallel",
        kernel=gen.nest.name,
        segments=len(bounds),
        sim_jobs=sim_jobs,
    ) as sp:
        outcomes = pool.run(jobs)
        applied = 0
        for (s0, s1), outcome in zip(bounds, outcomes):
            if budget is not None:
                budget.check_deadline(
                    f"segmented analysis of {gen.nest.name}"
                )
            res = outcome.result if outcome.ok else None
            if res is None and outcome.error is not None:
                logger.warning(
                    "segment [%d, %d) worker failed (%s); re-simulating "
                    "serially", s0, s1, outcome.error,
                )
            det_at = res["determined_at"] if res is not None else None
            target = s1 if det_at is None else det_at
            # Serial prefix from the true state up to the worker's
            # determination point (empty for segment 0).
            _simulate_range(
                gen, detector, s0, target, thread_order, spr, series, budget
            )
            if det_at is not None:
                if detector.state_fingerprint() == res["fingerprint"]:
                    base_fs = detector.stats.fs_cases
                    _merge_delta(detector.stats, res["delta"])
                    detector.import_state(res["state"])
                    if series is not None:
                        series.extend(base_fs + d for d in res["series"])
                    applied += 1
                    applied_counter.inc()
                    continue
                logger.warning(
                    "segment [%d, %d) fingerprint mismatch at step %d; "
                    "re-simulating serially", s0, s1, det_at,
                )
            resim_counter.inc()
            _simulate_range(
                gen, detector, target, s1, thread_order, spr, series, budget
            )
        sp.set(applied=applied, resimulated=len(bounds) - applied)
    return series
