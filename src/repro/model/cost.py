"""FS cost integration — ``FalseSharing_c`` in Eq. (1), percentages per Eq. (5).

The paper quantifies FS impact as a percentage of loop execution time:

* measured:  ``(T_fs − T_nfs) / T_fs``
* modeled:   ``(N_fs − N_nfs) / Ñ_fs``

The normalization ``Ñ_fs`` converts the modeled case-count difference to
a share of total loop cost.  Following DESIGN.md, we take

``modeled_% = (FS_c(fs) − FS_c(nfs)) / (C_ref + FS_c(fs))``

where ``FS_c`` converts cases to cycles with the direction-split
coherence penalties and ``C_ref`` is Eq. (1) without the FS term,
evaluated over the *reference* iteration space — the nest as bound for a
single thread.  A thread-independent reference reproduces the paper's
observed behaviour, including the ∝1/threads decline of linreg's modeled
percentage (its inner trip count shrinks with the thread count while the
reference does not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodels import CostBreakdown, TotalCostModel
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.model.fsmodel import FSModelResult


@dataclass(frozen=True)
class FSOverheadReport:
    """Modeled FS overhead of a loop, per Eq. (1) + Eq. (5)."""

    nest_name: str
    num_threads: int
    fs_chunk: int
    nfs_chunk: int
    fs_cases: int
    nfs_cases: int
    fs_cycles: float
    nfs_cycles: float
    reference_cycles: float
    percent: float

    def __str__(self) -> str:
        return (
            f"{self.nest_name} T={self.num_threads}: "
            f"N_fs={self.fs_cases} (chunk={self.fs_chunk}) vs "
            f"N_nfs={self.nfs_cases} (chunk={self.nfs_chunk}) -> "
            f"{self.percent:.1f}% of loop time"
        )


def fs_cycles(result: FSModelResult, machine: MachineConfig) -> float:
    """``FalseSharing_c``: cases → cycles with read/write-split penalties."""
    return result.fs_cycles(machine)


def fs_overhead_percent(
    fs_result: FSModelResult,
    nfs_result: FSModelResult,
    machine: MachineConfig,
    reference_nest: ParallelLoopNest,
    total_model: TotalCostModel | None = None,
) -> FSOverheadReport:
    """Eq. (5)'s modeled percentage for an (FS, non-FS) loop pair.

    Parameters
    ----------
    fs_result / nfs_result:
        Model results for the FS-heavy and FS-free chunk configurations
        of the *same* loop at the *same* thread count.
    machine:
        Machine description (penalties and cost-model constants).
    reference_nest:
        The thread-independent reference nest used for normalization
        (kernels expose this as their single-thread binding).
    total_model:
        Optionally a pre-built :class:`TotalCostModel` (e.g. sharing an
        address space); a fresh one is created otherwise.
    """
    if fs_result.num_threads != nfs_result.num_threads:
        raise ValueError(
            "FS and non-FS results must use the same thread count "
            f"({fs_result.num_threads} vs {nfs_result.num_threads})"
        )
    tm = total_model or TotalCostModel(machine)
    breakdown: CostBreakdown = tm.breakdown(
        reference_nest, num_threads=fs_result.num_threads, fs_cases=0.0
    )
    fsc = fs_result.fs_cycles(machine)
    nfsc = nfs_result.fs_cycles(machine)
    denom = breakdown.total + fsc
    percent = 100.0 * (fsc - nfsc) / denom if denom > 0 else 0.0
    return FSOverheadReport(
        nest_name=fs_result.nest_name,
        num_threads=fs_result.num_threads,
        fs_chunk=fs_result.chunk,
        nfs_chunk=nfs_result.chunk,
        fs_cases=fs_result.fs_cases,
        nfs_cases=nfs_result.fs_cases,
        fs_cycles=fsc,
        nfs_cycles=nfsc,
        reference_cycles=breakdown.total,
        percent=percent,
    )


def measured_fs_percent(t_fs: float, t_nfs: float) -> float:
    """The paper's measured percentage ``(T_fs − T_nfs)/T_fs`` (× 100).

    >>> measured_fs_percent(10.0, 9.0)
    10.0
    """
    if t_fs <= 0:
        raise ValueError(f"T_fs must be positive, got {t_fs}")
    return 100.0 * (t_fs - t_nfs) / t_fs


def predicted_fs_percent(
    pred_fs_cases: float,
    pred_nfs_cases: float,
    fs_result_for_split: FSModelResult,
    machine: MachineConfig,
    reference_cycles: float,
) -> float:
    """Eq. (5) percentage from *predicted* case counts (Tables IV–VI).

    The read/write split of the sampled prefix is applied to the
    predicted totals to convert cases to cycles.
    """
    total_cases = max(fs_result_for_split.fs_cases, 1)
    read_frac = fs_result_for_split.fs_read_cases / total_cases
    write_frac = fs_result_for_split.fs_write_cases / total_cases

    def to_cycles(cases: float) -> float:
        return cases * (
            read_frac * machine.fs_read_penalty_cycles
            + write_frac * machine.fs_write_penalty_cycles
        )

    fsc = to_cycles(pred_fs_cases)
    nfsc = to_cycles(pred_nfs_cases)
    denom = reference_cycles + fsc
    return 100.0 * (fsc - nfsc) / denom if denom > 0 else 0.0
