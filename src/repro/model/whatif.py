"""What-if sweeps: the FS landscape over (threads × chunk) space.

The paper closes with the model's intended use: helping "programmers
and compilers to choose the optimal chunk size for OpenMP loops and the
optimal number of threads to execute the loop."  This module sweeps
both knobs at once and returns the full landscape — FS cases, FS cycle
share and estimated wall time per configuration — ready for a table,
a CSV export or an ``argmin``.

The sweep uses the linear-regression predictor by default, making a
48-configuration landscape a sub-second operation.  Larger landscapes
(full model, big grids) go through :mod:`repro.engine`: every grid
point is an independent, content-addressed job, so
``sweep(nest, engine=Engine(jobs=4))`` fans out across worker processes
and a re-run of an already-computed landscape is served from the
on-disk result store.  Parallel and serial paths produce *identical*
:class:`SweepPoint` values — the point evaluation is deterministic and
shared (:func:`evaluate_point`), and results survive the JSON cache
round-trip exactly (floats round-trip losslessly through JSON).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.costmodels import TotalCostModel
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.model.fsmodel import FalseSharingModel
from repro.model.regression import FalseSharingPredictor
from repro.util import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine, Job

logger = get_logger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One (threads, chunk) configuration's predicted behaviour."""

    threads: int
    chunk: int
    fs_cases: float
    fs_cycles: float
    wall_cycles: float

    @property
    def fs_share(self) -> float:
        """FS cycles as a fraction of the configuration's wall time."""
        return self.fs_cycles / self.wall_cycles if self.wall_cycles else 0.0

    def to_dict(self) -> dict:
        """JSON-able form (the engine's cached job result)."""
        return {
            "threads": self.threads,
            "chunk": self.chunk,
            "fs_cases": self.fs_cases,
            "fs_cycles": self.fs_cycles,
            "wall_cycles": self.wall_cycles,
        }

    @staticmethod
    def from_dict(doc: dict) -> "SweepPoint":
        return SweepPoint(
            threads=int(doc["threads"]),
            chunk=int(doc["chunk"]),
            fs_cases=float(doc["fs_cases"]),
            fs_cycles=float(doc["fs_cycles"]),
            wall_cycles=float(doc["wall_cycles"]),
        )


@dataclass(frozen=True)
class SweepResult:
    """The full landscape plus convenience queries."""

    nest_name: str
    points: tuple[SweepPoint, ...]

    def best(self) -> SweepPoint:
        """The configuration with the smallest estimated wall time."""
        return min(self.points, key=lambda p: p.wall_cycles)

    def best_chunk_for(self, threads: int) -> SweepPoint:
        candidates = [p for p in self.points if p.threads == threads]
        if not candidates:
            raise ValueError(f"no sweep points for {threads} threads")
        return min(candidates, key=lambda p: p.wall_cycles)

    def grid(self) -> dict[tuple[int, int], SweepPoint]:
        return {(p.threads, p.chunk): p for p in self.points}

    def to_rows(self) -> list[tuple]:
        """Rows for reporting/CSV: (threads, chunk, fs_cases, fs_share %, ms-ish)."""
        return [
            (
                p.threads,
                p.chunk,
                int(p.fs_cases),
                round(100.0 * p.fs_share, 1),
                p.wall_cycles,
            )
            for p in self.points
        ]


def evaluate_point(
    machine: MachineConfig,
    nest: ParallelLoopNest,
    threads: int,
    chunk: int,
    use_predictor: bool = True,
    predictor_runs: int = 8,
    mode: str = "invalidate",
) -> SweepPoint:
    """Evaluate one (threads, chunk) configuration.

    This is the single source of truth for a sweep point — the serial
    path, the engine worker (:func:`run_point_job`) and any external
    caller all go through it, which is what makes ``--jobs N`` output
    bit-identical to ``--jobs 1``.  The computation is deterministic:
    the predictor samples a fixed prefix of chunk runs, not a random
    subset.
    """
    model = FalseSharingModel(machine, mode=mode)
    total_model = TotalCostModel(machine)
    candidate = nest.with_chunk(chunk)
    if use_predictor:
        pred = FalseSharingPredictor(
            model, n_runs=predictor_runs
        ).predict(candidate, threads)
        fs_cases = pred.predicted_fs_cases
        prefix = pred.prefix_result
        total = max(prefix.fs_cases, 1)
        fs_cycles = fs_cases * (
            (prefix.fs_read_cases / total)
            * machine.fs_read_penalty_cycles
            + (prefix.fs_write_cases / total)
            * machine.fs_write_penalty_cycles
        )
    else:
        result = model.analyze(candidate, threads)
        fs_cases = float(result.fs_cases)
        fs_cycles = result.fs_cycles(machine)
    breakdown = total_model.breakdown(
        candidate, num_threads=threads, fs_cases=0.0
    )
    work = (
        breakdown.machine + breakdown.cache + breakdown.tlb
        + breakdown.loop_overhead
    ) / threads
    wall = work + breakdown.parallel_overhead + fs_cycles
    return SweepPoint(
        threads=threads, chunk=chunk,
        fs_cases=fs_cases, fs_cycles=fs_cycles, wall_cycles=wall,
    )


def run_point_job(job) -> dict:
    """Engine runner for ``whatif.point`` jobs (executes in a worker).

    The spec carries the hashed identity (kernel digest, machine key
    dict, knobs); the payload carries the live ``MachineConfig`` and
    ``ParallelLoopNest`` objects the evaluation needs.
    """
    machine: MachineConfig = job.payload["machine"]
    nest: ParallelLoopNest = job.payload["nest"]
    point = evaluate_point(
        machine,
        nest,
        int(job.spec["threads"]),
        int(job.spec["chunk"]),
        use_predictor=bool(job.spec["use_predictor"]),
        predictor_runs=int(job.spec["predictor_runs"]),
        mode=str(job.spec["mode"]),
    )
    return point.to_dict()


class WhatIfSweep:
    """Sweep (threads × chunks) with the compile-time model.

    Parameters
    ----------
    machine:
        Target machine description.
    use_predictor:
        Use the LR predictor (default) or the full model per point.
    predictor_runs:
        Chunk runs sampled per point in predictor mode.
    """

    def __init__(
        self,
        machine: MachineConfig,
        use_predictor: bool = True,
        predictor_runs: int = 8,
        mode: str = "invalidate",
    ) -> None:
        self.machine = machine
        self.use_predictor = use_predictor
        self.predictor_runs = predictor_runs
        self.model = FalseSharingModel(machine, mode=mode)
        self.total_model = TotalCostModel(machine)

    def _point(
        self, nest: ParallelLoopNest, threads: int, chunk: int
    ) -> SweepPoint:
        return evaluate_point(
            self.machine, nest, threads, chunk,
            use_predictor=self.use_predictor,
            predictor_runs=self.predictor_runs,
            mode=self.model.mode,
        )

    def _feasible(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int],
        chunks: Sequence[int],
    ) -> list[tuple[int, int]]:
        """The feasible (threads, chunk) grid, serial evaluation order."""
        trip = nest.trip_counts()[nest.parallel_depth()]
        grid = [
            (t, c) for t in threads for c in chunks if c * t <= trip
        ]
        if not grid:
            raise ValueError(
                f"no feasible (threads, chunk) points for trip count {trip}"
            )
        return grid

    def point_jobs(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int] = (2, 4, 8, 16, 24, 32, 48),
        chunks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    ) -> "list[Job]":
        """One engine job per feasible grid point, in sweep order."""
        from repro.engine import Job, nest_digest

        digest = nest_digest(nest)
        machine_key = self.machine.to_key_dict()
        payload = {"machine": self.machine, "nest": nest}
        jobs = []
        for t, c in self._feasible(nest, threads, chunks):
            spec = {
                "kernel_sha256": digest,
                "machine": machine_key,
                "threads": t,
                "chunk": c,
                "use_predictor": self.use_predictor,
                "predictor_runs": self.predictor_runs,
                "mode": self.model.mode,
            }
            jobs.append(
                Job(
                    kind="whatif.point",
                    spec=spec,
                    payload=payload,
                    label=f"whatif:{nest.name}:t{t}c{c}",
                )
            )
        return jobs

    def sweep(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int] = (2, 4, 8, 16, 24, 32, 48),
        chunks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
        engine: "Engine | None" = None,
    ) -> SweepResult:
        """Evaluate the landscape; infeasible (chunk·T > trip) points
        are skipped.

        With an ``engine``, every point becomes a content-addressed job:
        points run across the engine's worker pool and repeat sweeps are
        served from its result store.  Point values are identical to the
        serial path; any point failure raises with the per-job error.
        """
        if engine is not None:
            jobs = self.point_jobs(nest, threads, chunks)
            results = engine.run_strict(jobs)
            points = tuple(SweepPoint.from_dict(doc) for doc in results)
            logger.debug(
                "what-if sweep on %s: %d points via engine (jobs=%d)",
                nest.name, len(points), engine.jobs,
            )
            return SweepResult(nest_name=nest.name, points=points)
        points_list = [
            self._point(nest, t, c)
            for t, c in self._feasible(nest, threads, chunks)
        ]
        logger.debug(
            "what-if sweep on %s: %d points", nest.name, len(points_list)
        )
        return SweepResult(nest_name=nest.name, points=tuple(points_list))
