"""What-if sweeps: the FS landscape over (threads × chunk) space.

The paper closes with the model's intended use: helping "programmers
and compilers to choose the optimal chunk size for OpenMP loops and the
optimal number of threads to execute the loop."  This module sweeps
both knobs at once and returns the full landscape — FS cases, FS cycle
share and estimated wall time per configuration — ready for a table,
a CSV export or an ``argmin``.

The sweep uses the linear-regression predictor by default, making a
48-configuration landscape a sub-second operation.  Larger landscapes
(full model, big grids) go through :mod:`repro.engine`: every grid
point is an independent, content-addressed job, so
``sweep(nest, engine=Engine(jobs=4))`` fans out across worker processes
and a re-run of an already-computed landscape is served from the
on-disk result store.  Parallel and serial paths produce *identical*
:class:`SweepPoint` values — the point evaluation is deterministic and
shared (:func:`evaluate_point`), and results survive the JSON cache
round-trip exactly (floats round-trip losslessly through JSON).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.costmodels import TotalCostModel
from repro.engine.incremental import ReuseReport, reuse_from_outcomes
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.model.fsmodel import FalseSharingModel
from repro.resilience.budget import Budget
from repro.resilience.errors import ModelError, ReproError
from repro.resilience.ladder import analyze_with_ladder
from repro.resilience.partial import FailurePolicy, FailureReport
from repro.obs import get_registry
from repro.util import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine, Job

logger = get_logger(__name__)


def _account_fallbacks(points: Sequence["SweepPoint"]) -> None:
    """Mirror worker-side ladder fallbacks into this process' registry.

    With an engine, the degradation ladder runs inside worker processes
    whose metric registries never reach the parent; re-counting degraded
    points here keeps ``resilience_fallbacks_total{level=...}`` visible
    in the sweep's own metrics dump (cache-served degraded points count
    too — the metric tracks degraded *results*, which is what a sweep
    report cares about).
    """
    counter = None
    for p in points:
        if not p.degraded:
            continue
        if counter is None:
            counter = get_registry().counter(
                "resilience_fallbacks_total",
                "analyses degraded to a cheaper fidelity level by a "
                "budget guard",
            )
        counter.labels(level=p.fidelity).inc()


@dataclass(frozen=True)
class SweepPoint:
    """One (threads, chunk) configuration's predicted behaviour."""

    threads: int
    chunk: int
    fs_cases: float
    fs_cycles: float
    wall_cycles: float
    #: Fidelity level that produced this point ("exact", "regression"
    #: or "analytic") and the degradation reason when a budget forced a
    #: drop below the requested level (see repro.resilience.ladder).
    fidelity: str = "regression"
    degradation: str | None = None

    @property
    def fs_share(self) -> float:
        """FS cycles as a fraction of the configuration's wall time."""
        return self.fs_cycles / self.wall_cycles if self.wall_cycles else 0.0

    @property
    def degraded(self) -> bool:
        return self.degradation is not None

    def to_dict(self) -> dict:
        """JSON-able form (the engine's cached job result)."""
        doc = {
            "threads": self.threads,
            "chunk": self.chunk,
            "fs_cases": self.fs_cases,
            "fs_cycles": self.fs_cycles,
            "wall_cycles": self.wall_cycles,
            "fidelity": self.fidelity,
        }
        if self.degradation is not None:
            doc["degradation"] = self.degradation
        return doc

    @staticmethod
    def from_dict(doc: dict) -> "SweepPoint":
        return SweepPoint(
            threads=int(doc["threads"]),
            chunk=int(doc["chunk"]),
            fs_cases=float(doc["fs_cases"]),
            fs_cycles=float(doc["fs_cycles"]),
            wall_cycles=float(doc["wall_cycles"]),
            fidelity=str(doc.get("fidelity", "regression")),
            degradation=doc.get("degradation"),
        )


@dataclass(frozen=True)
class SweepResult:
    """The full landscape plus convenience queries.

    ``failures`` holds one
    :class:`~repro.resilience.partial.FailureReport` per isolated
    grid-point failure when the sweep ran under a keep-going
    :class:`~repro.resilience.partial.FailurePolicy`; it is empty for
    strict (legacy) sweeps, which raise instead.

    ``reuse`` classifies every cell by provenance (memory tier, disk
    tier, in-batch dedupe, fresh compute); serial sweeps report all
    cells as computed.  It feeds the ``reuse`` block of sweep summaries.
    """

    nest_name: str
    points: tuple[SweepPoint, ...]
    failures: tuple[FailureReport, ...] = ()
    #: Provenance, not identity: a cache-served landscape equals its
    #: freshly computed twin, so reuse stays out of ==.
    reuse: ReuseReport = field(default_factory=ReuseReport, compare=False)

    @property
    def degraded_points(self) -> tuple[SweepPoint, ...]:
        return tuple(p for p in self.points if p.degraded)

    def best(self) -> SweepPoint:
        """The configuration with the smallest estimated wall time."""
        return min(self.points, key=lambda p: p.wall_cycles)

    def best_chunk_for(self, threads: int) -> SweepPoint:
        candidates = [p for p in self.points if p.threads == threads]
        if not candidates:
            raise ModelError(f"no sweep points for {threads} threads")
        return min(candidates, key=lambda p: p.wall_cycles)

    def grid(self) -> dict[tuple[int, int], SweepPoint]:
        return {(p.threads, p.chunk): p for p in self.points}

    def to_rows(self) -> list[tuple]:
        """Rows for reporting/CSV: (threads, chunk, fs_cases, fs_share %, ms-ish)."""
        return [
            (
                p.threads,
                p.chunk,
                int(p.fs_cases),
                round(100.0 * p.fs_share, 1),
                p.wall_cycles,
            )
            for p in self.points
        ]


def evaluate_point(
    machine: MachineConfig,
    nest: ParallelLoopNest,
    threads: int,
    chunk: int,
    use_predictor: bool = True,
    predictor_runs: int = 8,
    mode: str = "invalidate",
    budget: Budget | None = None,
    detector_engine: str = "auto",
    steady_state: bool = True,
    sim_jobs: int = 1,
) -> SweepPoint:
    """Evaluate one (threads, chunk) configuration.

    This is the single source of truth for a sweep point — the serial
    path, the engine worker (:func:`run_point_job`) and any external
    caller all go through it, which is what makes ``--jobs N`` output
    bit-identical to ``--jobs 1``.  The computation is deterministic:
    the predictor samples a fixed prefix of chunk runs, not a random
    subset.

    ``detector_engine``, ``steady_state`` and ``sim_jobs`` select the
    detector implementation (see :class:`FalseSharingModel`).  All such knobs are
    *result-invariant* — every engine produces bit-identical counters —
    so they deliberately do **not** participate in the engine cache key
    (:meth:`WhatIfSweep.point_jobs` puts them in the job payload, not
    the spec): a sweep cached under one engine is valid for all.

    With a ``budget``, the evaluation goes through the degradation
    ladder (:func:`repro.resilience.ladder.analyze_with_ladder`): an
    over-budget exact analysis falls back to the regression prediction,
    and an over-budget prediction to the analytic upper bound.  The
    achieved level and the reason are recorded on the returned
    :class:`SweepPoint` (``fidelity`` / ``degradation``).
    """
    model = FalseSharingModel(
        machine, mode=mode, engine=detector_engine, steady_state=steady_state,
        sim_jobs=sim_jobs,
    )
    total_model = TotalCostModel(machine)
    candidate = nest.with_chunk(chunk)
    prefer = "exact" if not use_predictor else "regression"
    outcome = analyze_with_ladder(
        machine,
        candidate,
        threads,
        budget=budget,
        prefer=prefer,
        predictor_runs=predictor_runs,
        mode=mode,
        model=model,
    )
    fs_cases = outcome.fs_cases
    fs_cycles = outcome.fs_cycles(machine)
    breakdown = total_model.breakdown(
        candidate, num_threads=threads, fs_cases=0.0
    )
    work = (
        breakdown.machine + breakdown.cache + breakdown.tlb
        + breakdown.loop_overhead
    ) / threads
    wall = work + breakdown.parallel_overhead + fs_cycles
    return SweepPoint(
        threads=threads, chunk=chunk,
        fs_cases=fs_cases, fs_cycles=fs_cycles, wall_cycles=wall,
        fidelity=outcome.fidelity, degradation=outcome.degradation,
    )


def run_point_job(job) -> dict:
    """Engine runner for ``whatif.point`` jobs (executes in a worker).

    The spec carries the hashed identity (kernel digest, machine key
    dict, knobs); the payload carries the live ``MachineConfig`` and
    ``ParallelLoopNest`` objects the evaluation needs.
    """
    machine: MachineConfig = job.payload["machine"]
    nest: ParallelLoopNest = job.payload["nest"]
    point = evaluate_point(
        machine,
        nest,
        int(job.spec["threads"]),
        int(job.spec["chunk"]),
        use_predictor=bool(job.spec["use_predictor"]),
        predictor_runs=int(job.spec["predictor_runs"]),
        mode=str(job.spec["mode"]),
        budget=Budget.from_key_dict(job.spec.get("budget")),
        # Engine knobs ride in the payload (not the hashed spec):
        # results are engine-invariant, so cache keys must not fork on
        # them — a landscape computed with the fast path serves a
        # reference-engine re-run and vice versa.
        detector_engine=str(job.payload.get("detector_engine", "auto")),
        steady_state=bool(job.payload.get("steady_state", True)),
        sim_jobs=int(job.payload.get("sim_jobs", 1)),
    )
    return point.to_dict()


class WhatIfSweep:
    """Sweep (threads × chunks) with the compile-time model.

    Parameters
    ----------
    machine:
        Target machine description.
    use_predictor:
        Use the LR predictor (default) or the full model per point.
    predictor_runs:
        Chunk runs sampled per point in predictor mode.
    detector_engine:
        Detector engine per point: ``"auto"`` (default), ``"jit"``,
        ``"fast"`` or ``"reference"``.  Result-invariant, so it never
        enters the engine cache key.
    steady_state:
        Enable the exact steady-state early exit (default ``True``).
    sim_jobs:
        Segment-parallel workers per point (default ``1``).  Also
        result-invariant and payload-only.
    """

    def __init__(
        self,
        machine: MachineConfig,
        use_predictor: bool = True,
        predictor_runs: int = 8,
        mode: str = "invalidate",
        detector_engine: str = "auto",
        steady_state: bool = True,
        sim_jobs: int = 1,
    ) -> None:
        self.machine = machine
        self.use_predictor = use_predictor
        self.predictor_runs = predictor_runs
        self.detector_engine = detector_engine
        self.steady_state = steady_state
        self.sim_jobs = sim_jobs
        self.model = FalseSharingModel(
            machine, mode=mode, engine=detector_engine,
            steady_state=steady_state, sim_jobs=sim_jobs,
        )
        self.total_model = TotalCostModel(machine)

    def _point(
        self,
        nest: ParallelLoopNest,
        threads: int,
        chunk: int,
        budget: Budget | None = None,
    ) -> SweepPoint:
        return evaluate_point(
            self.machine, nest, threads, chunk,
            use_predictor=self.use_predictor,
            predictor_runs=self.predictor_runs,
            mode=self.model.mode,
            budget=budget,
            detector_engine=self.detector_engine,
            steady_state=self.steady_state,
            sim_jobs=self.sim_jobs,
        )

    def _feasible(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int],
        chunks: Sequence[int],
    ) -> list[tuple[int, int]]:
        """The feasible (threads, chunk) grid, serial evaluation order."""
        trip = nest.trip_counts()[nest.parallel_depth()]
        grid = [
            (t, c) for t in threads for c in chunks if c * t <= trip
        ]
        if not grid:
            raise ModelError(
                f"no feasible (threads, chunk) points for trip count {trip}"
            )
        return grid

    def feasible_grid(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int] = (2, 4, 8, 16, 24, 32, 48),
        chunks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    ) -> list[tuple[int, int]]:
        """The feasible (threads, chunk) grid, in sweep order.

        Public admission-control hook: the analysis service sizes and
        cost-estimates a submitted sweep from this grid *before*
        queueing it, without building any engine jobs.
        """
        return self._feasible(nest, threads, chunks)

    def point_jobs(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int] = (2, 4, 8, 16, 24, 32, 48),
        chunks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
        budget: Budget | None = None,
    ) -> "list[Job]":
        """One engine job per feasible grid point, in sweep order.

        A non-empty budget joins the job spec (and therefore the cache
        key): a budgeted, possibly degraded point must never alias the
        cache entry of an unbudgeted exact one.
        """
        from repro.engine import Job, nest_digest

        digest = nest_digest(nest)
        machine_key = self.machine.to_key_dict()
        # detector_engine / steady_state / sim_jobs stay OUT of the
        # spec (and therefore out of the cache key): all engines are
        # result-identical, so forking the key on them would only
        # defeat the result store.
        payload = {
            "machine": self.machine,
            "nest": nest,
            "detector_engine": self.detector_engine,
            "steady_state": self.steady_state,
            "sim_jobs": self.sim_jobs,
        }
        budget_key = budget.to_key_dict() if budget is not None else {}
        jobs = []
        for t, c in self._feasible(nest, threads, chunks):
            spec = {
                "kernel_sha256": digest,
                "machine": machine_key,
                "threads": t,
                "chunk": c,
                "use_predictor": self.use_predictor,
                "predictor_runs": self.predictor_runs,
                "mode": self.model.mode,
            }
            if budget_key:
                spec["budget"] = budget_key
            jobs.append(
                Job(
                    kind="whatif.point",
                    spec=spec,
                    payload=payload,
                    label=f"whatif:{nest.name}:t{t}c{c}",
                )
            )
        return jobs

    def sweep(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int] = (2, 4, 8, 16, 24, 32, 48),
        chunks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
        engine: "Engine | None" = None,
        budget: Budget | None = None,
        policy: FailurePolicy | None = None,
    ) -> SweepResult:
        """Evaluate the landscape; infeasible (chunk·T > trip) points
        are skipped.

        With an ``engine``, every point becomes a content-addressed job:
        points run across the engine's worker pool and repeat sweeps are
        served from its result store.  Point values are identical to the
        serial path.

        Failure semantics: without a ``policy`` any point failure raises
        (strict, the historical behaviour).  With a keep-going
        :class:`~repro.resilience.partial.FailurePolicy`, failed points
        are isolated into ``SweepResult.failures`` while the rest of the
        grid completes — unless the policy's failure-rate circuit
        breaker trips first (``REPRO-E201``).  A ``budget`` flows into
        every point evaluation (degradation ladder; see
        :func:`evaluate_point`).
        """
        if engine is not None:
            jobs = self.point_jobs(nest, threads, chunks, budget=budget)
            if policy is None:
                outcomes = engine.run(jobs)
                results = [outcome.unwrap() for outcome in outcomes]
                points = tuple(SweepPoint.from_dict(doc) for doc in results)
                _account_fallbacks(points)
                logger.debug(
                    "what-if sweep on %s: %d points via engine (jobs=%d)",
                    nest.name, len(points), engine.jobs,
                )
                return SweepResult(
                    nest_name=nest.name, points=points,
                    reuse=reuse_from_outcomes(outcomes),
                )
            points_list: list[SweepPoint] = []
            outcomes = engine.run(jobs)
            for outcome in outcomes:
                if outcome.ok:
                    points_list.append(SweepPoint.from_dict(outcome.result))
                    policy.record_success()
                else:
                    policy.record_failure(
                        FailureReport.from_outcome(
                            outcome,
                            kind="sweep.point",
                            point={
                                "threads": outcome.job.spec.get("threads"),
                                "chunk": outcome.job.spec.get("chunk"),
                            },
                        )
                    )
            _account_fallbacks(points_list)
            return SweepResult(
                nest_name=nest.name,
                points=tuple(points_list),
                failures=tuple(policy.failures),
                reuse=reuse_from_outcomes(outcomes),
            )
        points_list = []
        failures: tuple[FailureReport, ...] = ()
        for t, c in self._feasible(nest, threads, chunks):
            if policy is None:
                points_list.append(self._point(nest, t, c, budget=budget))
                continue
            try:
                points_list.append(self._point(nest, t, c, budget=budget))
                policy.record_success()
            except ReproError as exc:
                policy.record_failure(
                    FailureReport.from_exception(
                        exc,
                        label=f"whatif:{nest.name}:t{t}c{c}",
                        kind="sweep.point",
                        point={"threads": t, "chunk": c},
                    ),
                    cause=exc,
                )
        if policy is not None:
            failures = tuple(policy.failures)
        logger.debug(
            "what-if sweep on %s: %d points (%d failures)",
            nest.name, len(points_list), len(failures),
        )
        return SweepResult(
            nest_name=nest.name, points=tuple(points_list), failures=failures,
            reuse=ReuseReport(
                total=len(points_list) + len(failures),
                computed=len(points_list),
                failed=len(failures),
            ),
        )
