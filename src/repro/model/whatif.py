"""What-if sweeps: the FS landscape over (threads × chunk) space.

The paper closes with the model's intended use: helping "programmers
and compilers to choose the optimal chunk size for OpenMP loops and the
optimal number of threads to execute the loop."  This module sweeps
both knobs at once and returns the full landscape — FS cases, FS cycle
share and estimated wall time per configuration — ready for a table,
a CSV export or an ``argmin``.

The sweep uses the linear-regression predictor by default, making a
48-configuration landscape a sub-second operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.costmodels import TotalCostModel
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.model.fsmodel import FalseSharingModel
from repro.model.regression import FalseSharingPredictor
from repro.util import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One (threads, chunk) configuration's predicted behaviour."""

    threads: int
    chunk: int
    fs_cases: float
    fs_cycles: float
    wall_cycles: float

    @property
    def fs_share(self) -> float:
        """FS cycles as a fraction of the configuration's wall time."""
        return self.fs_cycles / self.wall_cycles if self.wall_cycles else 0.0


@dataclass(frozen=True)
class SweepResult:
    """The full landscape plus convenience queries."""

    nest_name: str
    points: tuple[SweepPoint, ...]

    def best(self) -> SweepPoint:
        """The configuration with the smallest estimated wall time."""
        return min(self.points, key=lambda p: p.wall_cycles)

    def best_chunk_for(self, threads: int) -> SweepPoint:
        candidates = [p for p in self.points if p.threads == threads]
        if not candidates:
            raise ValueError(f"no sweep points for {threads} threads")
        return min(candidates, key=lambda p: p.wall_cycles)

    def grid(self) -> dict[tuple[int, int], SweepPoint]:
        return {(p.threads, p.chunk): p for p in self.points}

    def to_rows(self) -> list[tuple]:
        """Rows for reporting/CSV: (threads, chunk, fs_cases, fs_share %, ms-ish)."""
        return [
            (
                p.threads,
                p.chunk,
                int(p.fs_cases),
                round(100.0 * p.fs_share, 1),
                p.wall_cycles,
            )
            for p in self.points
        ]


class WhatIfSweep:
    """Sweep (threads × chunks) with the compile-time model.

    Parameters
    ----------
    machine:
        Target machine description.
    use_predictor:
        Use the LR predictor (default) or the full model per point.
    predictor_runs:
        Chunk runs sampled per point in predictor mode.
    """

    def __init__(
        self,
        machine: MachineConfig,
        use_predictor: bool = True,
        predictor_runs: int = 8,
        mode: str = "invalidate",
    ) -> None:
        self.machine = machine
        self.use_predictor = use_predictor
        self.predictor_runs = predictor_runs
        self.model = FalseSharingModel(machine, mode=mode)
        self.total_model = TotalCostModel(machine)

    def _point(
        self, nest: ParallelLoopNest, threads: int, chunk: int
    ) -> SweepPoint:
        candidate = nest.with_chunk(chunk)
        if self.use_predictor:
            pred = FalseSharingPredictor(
                self.model, n_runs=self.predictor_runs
            ).predict(candidate, threads)
            fs_cases = pred.predicted_fs_cases
            prefix = pred.prefix_result
            total = max(prefix.fs_cases, 1)
            fs_cycles = fs_cases * (
                (prefix.fs_read_cases / total)
                * self.machine.fs_read_penalty_cycles
                + (prefix.fs_write_cases / total)
                * self.machine.fs_write_penalty_cycles
            )
        else:
            result = self.model.analyze(candidate, threads)
            fs_cases = float(result.fs_cases)
            fs_cycles = result.fs_cycles(self.machine)
        breakdown = self.total_model.breakdown(
            candidate, num_threads=threads, fs_cases=0.0
        )
        work = (
            breakdown.machine + breakdown.cache + breakdown.tlb
            + breakdown.loop_overhead
        ) / threads
        wall = work + breakdown.parallel_overhead + fs_cycles
        return SweepPoint(
            threads=threads, chunk=chunk,
            fs_cases=fs_cases, fs_cycles=fs_cycles, wall_cycles=wall,
        )

    def sweep(
        self,
        nest: ParallelLoopNest,
        threads: Sequence[int] = (2, 4, 8, 16, 24, 32, 48),
        chunks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    ) -> SweepResult:
        """Evaluate the landscape; infeasible (chunk·T > trip) points
        are skipped."""
        trip = nest.trip_counts()[nest.parallel_depth()]
        points = []
        for t in threads:
            for c in chunks:
                if c * t > trip:
                    continue
                points.append(self._point(nest, t, c))
        if not points:
            raise ValueError(
                f"no feasible (threads, chunk) points for trip count {trip}"
            )
        logger.debug("what-if sweep on %s: %d points", nest.name, len(points))
        return SweepResult(nest_name=nest.name, points=tuple(points))
