"""The compile-time false-sharing cost model (Section III driver).

:class:`FalseSharingModel` wires the four steps of the paper together:

1. array references come from the nest's innermost loop
   (``nest.innermost_accesses()``, produced by the frontend or builders);
2. :class:`~repro.model.ownership.OwnershipListGenerator` produces the
   per-thread cache line ownership lists, block by block;
3. + 4. :class:`~repro.model.detector.FSDetector` maintains the per-thread
   LRU cache states and performs the φ/mask 1-to-All comparison.

``analyze`` evaluates the paper's ``All_num_iters / num_threads``
lockstep steps (optionally truncated to a prefix of *chunk runs* for the
prediction model) and returns an :class:`FSModelResult` with total FS
cases, read/write split, per-line victim attribution and the optional
per-chunk-run cumulative series behind Fig. 6.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field, replace

import numpy as np

from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import AddressSpace
from repro.ir.validate import validate_nest
from repro.machine import MachineConfig
from repro.model.detector import FSDetector, FSStats
from repro.model.fastdetect import make_detector, resolve_engine
from repro.model.ownership import OwnershipListGenerator
from repro.model.schedule import IterationSpace
from repro.model.simparallel import segment_eligible, simulate_segmented
from repro.model.steadystate import SteadyStateRunner, compute_shift_profile
from repro.obs import get_registry, span
from repro.resilience.budget import Budget, estimate_cost
from repro.resilience.errors import ModelError
from repro.util import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class VictimArray:
    """An array implicated in false sharing, with its share of cases."""

    name: str
    fs_cases: int
    lines: int


@dataclass(frozen=True)
class FSCycleRate:
    """FS rate for loops with unknown boundaries (Section III preamble).

    "If the loop boundaries are not known at compile-time, the model
    only outputs the FS rate estimated per full cycle of iterations
    executed by all of the threads" — one full cycle being one chunk
    run (``num_threads × chunk_size`` parallel iterations).
    """

    nest_name: str
    num_threads: int
    chunk: int
    cycles_evaluated: int
    fs_cases_per_cycle: float
    accesses_per_cycle: float
    result: "FSModelResult"

    def extrapolate(self, total_cycles: int) -> float:
        """Projected FS cases for a loop of ``total_cycles`` chunk runs."""
        if total_cycles < 0:
            raise ModelError("total_cycles must be non-negative")
        return self.fs_cases_per_cycle * total_cycles


@dataclass
class FSModelResult:
    """Outcome of one compile-time FS analysis."""

    nest_name: str
    num_threads: int
    chunk: int
    mode: str
    fs_cases: int
    fs_read_cases: int
    fs_write_cases: int
    steps_evaluated: int
    chunk_runs_evaluated: int
    total_chunk_runs: int
    accesses: int
    stats: FSStats
    space: AddressSpace
    elapsed_seconds: float
    line_size: int = 64
    per_chunk_run: np.ndarray | None = None
    #: ``"exact"`` for full simulation, ``"exact-steady-state"`` when
    #: part of the loop was closed by exact periodic extrapolation (both
    #: are bit-identical to full simulation; the label records *how* the
    #: result was obtained for the resilience ladder / provenance).
    fidelity: str = "exact"
    #: detector engine that produced the result (``fast``/``reference``)
    engine: str = "reference"
    #: chunk runs actually walked by the detector
    runs_simulated: int = 0
    #: chunk runs closed by exact steady-state extrapolation
    runs_extrapolated: int = 0
    _victims: tuple[VictimArray, ...] | None = field(default=None, repr=False)

    def fs_cycles(self, machine: MachineConfig) -> float:
        """Convert FS cases to cycles (``FalseSharing_c``).

        Read cases stall on cache-to-cache transfers; write cases pay the
        (store-buffer-absorbed) invalidation cost — see detector docs.
        """
        return (
            self.fs_read_cases * machine.fs_read_penalty_cycles
            + self.fs_write_cases * machine.fs_write_penalty_cycles
        )

    def fs_cycles_numa(
        self, machine: MachineConfig, placement: str = "contiguous"
    ) -> float:
        """NUMA-aware ``FalseSharing_c`` using the thread-pair matrix.

        Each (writer, accessor) pair's cases are scaled by the machine's
        ``cross_socket_factor`` when the pair straddles sockets under the
        given thread placement.  With the default factor of 1.0 this
        degenerates to :meth:`fs_cycles`.
        """
        from repro.machine.topology import pair_penalty_factory

        if self.fs_cases == 0:
            return 0.0
        penalty = pair_penalty_factory(
            self.num_threads,
            machine.cores_per_socket,
            placement,
            machine.coherence.cross_socket_factor,
        )
        # Apply the overall read/write split to each pair's case count.
        read_frac = self.fs_read_cases / self.fs_cases
        write_frac = self.fs_write_cases / self.fs_cases
        per_case = (
            read_frac * machine.fs_read_penalty_cycles
            + write_frac * machine.fs_write_penalty_cycles
        )
        return sum(
            cases * per_case * penalty(writer, accessor)
            for (writer, accessor), cases in self.stats.fs_by_pair.items()
        )

    def victim_arrays(self) -> tuple[VictimArray, ...]:
        """Arrays ranked by the FS cases attributed to their lines.

        This is the diagnostic the paper motivates: pointing the
        programmer at the data structure *causing* the false sharing.
        """
        if self._victims is not None:
            return self._victims
        per_array: Counter = Counter()
        lines_per_array: Counter = Counter()
        for line, cases in self.stats.fs_by_line.items():
            name = self._array_of_address(line * self.line_size)
            per_array[name] += cases
            lines_per_array[name] += 1
        self._victims = tuple(
            VictimArray(name, cases, lines_per_array[name])
            for name, cases in per_array.most_common()
        )
        return self._victims

    def _array_of_address(self, addr: int) -> str:
        for arr in self.space.arrays():
            base = self.space.base(arr.name)
            if base <= addr < base + arr.size_bytes():
                return arr.name
        return "<unknown>"


class FalseSharingModel:
    """The paper's compile-time FS cost model.

    Parameters
    ----------
    machine:
        Target machine; supplies the line size and the per-thread cache
        state depth (fully-associative approximation of the private L2).
    mode:
        FS counting semantics, ``"invalidate"`` (default) or
        ``"literal"`` — see :mod:`repro.model.detector`.
    block_steps:
        Lockstep steps processed per vectorized block.
    engine:
        Detector engine: ``"auto"`` (default — vectorized fast path
        when the configuration permits, reference otherwise),
        ``"fast"`` or ``"reference"``.  All engines are result-identical
        (see :mod:`repro.model.fastdetect`); this is a pure performance
        knob.
    steady_state:
        Enable the exact steady-state early-exit (see
        :mod:`repro.model.steadystate`).  Only engages on full-loop
        analyses of eligible nests; also result-identical.
    sim_jobs:
        Worker processes for segment-parallel simulation (see
        :mod:`repro.model.simparallel`).  ``1`` (default) keeps the
        serial walk; higher values fan independent chunk-run segments
        across cores with verified, bit-identical merging.  A pure
        performance knob, kept out of result cache keys.
    """

    def __init__(
        self,
        machine: MachineConfig,
        mode: str = "invalidate",
        block_steps: int = 4096,
        thread_order: tuple[int, ...] | None = None,
        engine: str = "auto",
        steady_state: bool = True,
        sim_jobs: int = 1,
    ) -> None:
        self.machine = machine
        self.mode = mode
        self.block_steps = block_steps
        #: Optional within-step thread processing order (ablation knob;
        #: the lockstep model's default is ascending thread id).
        self.thread_order = thread_order
        resolve_engine(engine, mode, 1)  # validate the knob eagerly
        self.engine = engine
        self.steady_state = steady_state
        if sim_jobs < 1:
            raise ModelError(f"sim_jobs must be >= 1, got {sim_jobs}")
        self.sim_jobs = sim_jobs

    def analyze(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        chunk: int | None = None,
        max_chunk_runs: int | None = None,
        record_series: bool = False,
        space: AddressSpace | None = None,
        budget: Budget | None = None,
        engine: str | None = None,
        steady_state: bool | None = None,
        sim_jobs: int | None = None,
    ) -> FSModelResult:
        """Run the full FS analysis.

        Parameters
        ----------
        nest:
            Bound parallel loop nest (symbolic parameters resolved).
        num_threads:
            Thread count executing the loop.
        chunk:
            Override for the nest's schedule chunk (the evaluation
            compares chunk configurations of the same loop).
        max_chunk_runs:
            Evaluate only this many chunk runs (prediction-model prefix);
            ``None`` evaluates the whole loop.
        record_series:
            Record the cumulative FS count after every chunk run
            (required by the Fig. 6 linearity study and the predictor).
        space:
            Optional pre-populated address space (shared with other
            models for placement-consistent analyses).
        budget:
            Optional :class:`~repro.resilience.budget.Budget`.  The
            steps/state guards are enforced *before* the walk starts
            (pre-run estimate, ``REPRO-R001``/``REPRO-R003``); the
            deadline is checked between detector blocks while it runs
            (``REPRO-R002``).  A budgeted caller that wants graceful
            degradation instead of an exception should go through
            :func:`repro.resilience.ladder.analyze_with_ladder`.
        engine:
            Per-call override of the model's detector engine knob.
        steady_state:
            Per-call override of the steady-state early-exit flag.
        sim_jobs:
            Per-call override of the segment-parallel worker count.

        Notes
        -----
        The result's ``fs_cases`` is the paper's ``N_fs_model`` /
        ``N_nfs_model`` depending on the chunk configuration analyzed.
        """
        if num_threads <= 0:
            raise ModelError(f"num_threads must be positive, got {num_threads}")
        if chunk is not None:
            nest = nest.with_chunk(chunk)
        validate_nest(nest)
        if budget is not None and not budget.unlimited:
            estimate = estimate_cost(nest, num_threads, self.machine)
            if max_chunk_runs is not None:
                # Only the prefix will run; guard what will actually
                # be evaluated, not the whole loop.
                prefix_steps = estimate.steps_for_runs(max_chunk_runs)
                estimate = replace(estimate, steps=prefix_steps)
            budget.check_estimate(estimate, where=nest.name)

        with span(
            "model.analyze", kernel=nest.name, threads=num_threads,
            mode=self.mode,
        ) as sp:
            result = self._analyze(
                nest, num_threads, max_chunk_runs, record_series, space,
                budget,
                engine=self.engine if engine is None else engine,
                sim_jobs=self.sim_jobs if sim_jobs is None else sim_jobs,
                steady_state=(
                    self.steady_state if steady_state is None else steady_state
                ),
            )
            sp.set(
                chunk=result.chunk, fs_cases=result.fs_cases,
                engine=result.engine, fidelity=result.fidelity,
            )
        return result

    def _analyze(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        max_chunk_runs: int | None,
        record_series: bool,
        space: AddressSpace | None,
        budget: Budget | None = None,
        engine: str = "auto",
        steady_state: bool = True,
        sim_jobs: int = 1,
    ) -> FSModelResult:
        t0 = time.perf_counter()
        gen = OwnershipListGenerator(
            nest,
            num_threads,
            line_size=self.machine.line_size,
            space=space,
            block_steps=self.block_steps,
        )
        ispace: IterationSpace = gen.iteration_space

        steps_per_run = ispace.steps_per_chunk_run
        max_steps: int | None = None
        if max_chunk_runs is not None:
            max_steps = max_chunk_runs * steps_per_run
        limit_steps = gen.enum.max_steps
        if max_steps is not None:
            limit_steps = min(limit_steps, max_steps)
        # Trace-size hint for the "auto" crossover: tiny traces skip
        # vectorization overhead and run on the reference path.
        approx_accesses = limit_steps * len(gen.refs) * num_threads
        resolved_engine = resolve_engine(
            engine, self.mode, num_threads, accesses=approx_accesses
        )
        detector = make_detector(
            resolved_engine,
            num_threads,
            self.machine.model_stack_lines,
            mode=self.mode,
        )

        runs_simulated = 0
        runs_extrapolated = 0
        series: list[int] | None = None
        steady_runner: SteadyStateRunner | None = None
        if steady_state and max_chunk_runs is None:
            # The early exit needs the whole loop (a truncated prefix is
            # the predictor's job) and an eligible shift structure.
            profile = compute_shift_profile(gen, num_threads)
            if profile is not None:
                steady_runner = SteadyStateRunner(
                    gen,
                    detector,
                    profile,
                    thread_order=self.thread_order,
                    budget=budget,
                    record_series=record_series,
                    block_steps=self.block_steps,
                )
        if steady_runner is not None:
            runs_simulated, runs_extrapolated, series = steady_runner.run()
        elif sim_jobs > 1 and segment_eligible(
            gen, detector.stack_lines, sim_jobs, limit_steps
        ):
            # Segment-parallel simulation: fan independent chunk-run
            # segments across worker processes, splice verified results
            # back bit-identically (see repro.model.simparallel).
            series = simulate_segmented(
                gen,
                detector,
                sim_jobs=sim_jobs,
                engine=resolved_engine,
                thread_order=self.thread_order,
                max_steps=max_steps,
                record_series=record_series,
                budget=budget,
            )
        elif record_series:
            # Align block emission to chunk-run boundaries so cumulative
            # counts are sampled exactly at run ends.
            runs_per_block = max(1, self.block_steps // max(steps_per_run, 1))
            gen.enum.block_steps = runs_per_block * steps_per_run
            series = []
            for block in gen.blocks(max_steps):
                if budget is not None:
                    budget.check_deadline(f"analysis of {nest.name}")
                self._process_block_with_series(
                    detector, block, gen.write_mask, steps_per_run, series
                )
        else:
            for block in gen.blocks(max_steps):
                if budget is not None:
                    budget.check_deadline(f"analysis of {nest.name}")
                detector.process_block(
                    block.lines, gen.write_mask, thread_order=self.thread_order
                )

        elapsed = time.perf_counter() - t0
        stats = detector.stats
        runs_evaluated = (
            stats.steps // steps_per_run if steps_per_run else 0
        )
        # Bridge the detector's per-run counters into the obs registry
        # and record model-side throughput (accesses/sec) + duration.
        stats.publish(
            kernel=nest.name, threads=num_threads, chunk=ispace.chunk,
            mode=self.mode,
        )
        if steady_runner is None:
            runs_simulated = runs_evaluated
        registry = get_registry()
        registry.histogram(
            "model_analyze_seconds", "wall time of FalseSharingModel.analyze"
        ).labels(kernel=nest.name).observe(elapsed)
        if elapsed > 0:
            registry.gauge(
                "model_accesses_per_sec",
                "modeled accesses processed per second by the last analysis",
            ).labels(kernel=nest.name).set(stats.accesses / elapsed)
            registry.gauge(
                "detector_accesses_per_second",
                "detector throughput of the last analysis (incl. "
                "extrapolated accesses), by engine",
            ).labels(kernel=nest.name, engine=resolved_engine).set(
                stats.accesses / elapsed
            )
        result = FSModelResult(
            nest_name=nest.name,
            num_threads=num_threads,
            chunk=ispace.chunk,
            mode=self.mode,
            fs_cases=stats.fs_cases,
            fs_read_cases=stats.fs_read_cases,
            fs_write_cases=stats.fs_write_cases,
            steps_evaluated=stats.steps,
            chunk_runs_evaluated=runs_evaluated,
            total_chunk_runs=ispace.total_chunk_runs,
            accesses=stats.accesses,
            stats=stats,
            space=gen.space,
            elapsed_seconds=elapsed,
            line_size=self.machine.line_size,
            per_chunk_run=np.asarray(series, dtype=np.int64) if series else None,
            fidelity=(
                "exact-steady-state" if runs_extrapolated > 0 else "exact"
            ),
            engine=resolved_engine,
            runs_simulated=runs_simulated,
            runs_extrapolated=runs_extrapolated,
        )
        logger.debug(
            "FS analysis %s T=%d chunk=%d: %d cases in %d steps "
            "(%.3fs, engine=%s, %d runs extrapolated)",
            nest.name, num_threads, ispace.chunk, stats.fs_cases,
            stats.steps, elapsed, resolved_engine, runs_extrapolated,
        )
        return result

    def analyze_cycle_rate(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        chunk: int,
        warmup_cycles: int = 1,
        measured_cycles: int = 4,
    ) -> FSCycleRate:
        """FS rate per full cycle for loops with *unknown boundaries*.

        The paper's fallback when trip counts are not compile-time
        constants: evaluate full cycles of iterations (one cycle =
        ``num_threads × chunk`` parallel iterations) and report the FS
        rate per cycle.  The nest's parallel-loop upper bound may be a
        single symbolic parameter; it is bound to exactly
        ``warmup_cycles + measured_cycles`` cycles of iterations, the
        warm-up cycles are discarded (cold effects), and the steady-state
        rate is returned.

        Raises when more than the parallel bound is symbolic — inner trip
        counts and array extents must still be known, as in the paper.
        """
        if chunk <= 0:
            raise ModelError("chunk must be positive for cycle-rate analysis")
        if measured_cycles <= 0 or warmup_cycles < 0:
            raise ModelError("need measured_cycles > 0 and warmup_cycles >= 0")
        nest = nest.with_chunk(chunk)
        parallel = nest.parallel_loop()
        free = set(parallel.upper.variables())
        total_cycles = warmup_cycles + measured_cycles
        if free:
            if len(free) > 1:
                raise ModelError(
                    f"parallel bound {parallel.upper} uses several unknowns "
                    f"{sorted(free)}; only one symbolic boundary is supported",
                    code="REPRO-M102",
                )
            (param,) = free
            if parallel.upper.coeff(param) != 1:
                raise ModelError(
                    f"symbolic parallel bound must be linear in {param!r} "
                    "with coefficient 1",
                    code="REPRO-M102",
                )
            # Bind the unknown so the loop runs exactly total_cycles runs.
            needed_trip = num_threads * chunk * total_cycles
            lower = parallel.lower
            if not lower.is_constant:
                raise ModelError(
                    "parallel lower bound must be constant", code="REPRO-M102"
                )
            value = (
                lower.as_int()
                + needed_trip * parallel.step
                - parallel.upper.const
            )
            nest = nest.bind({param: value})
        result = self.analyze(
            nest, num_threads, max_chunk_runs=total_cycles, record_series=True
        )
        series = result.per_chunk_run
        assert series is not None and len(series) >= 1
        if warmup_cycles and len(series) > warmup_cycles:
            steady = series[warmup_cycles:]
            base = series[warmup_cycles - 1]
            per_cycle = (steady[-1] - base) / len(steady)
            cycles = len(steady)
        else:
            per_cycle = series[-1] / len(series)
            cycles = len(series)
        return FSCycleRate(
            nest_name=result.nest_name,
            num_threads=num_threads,
            chunk=result.chunk,
            cycles_evaluated=cycles,
            fs_cases_per_cycle=float(per_cycle),
            accesses_per_cycle=result.accesses / max(len(series), 1),
            result=result,
        )

    def _process_block_with_series(
        self, detector, block, write_mask, steps_per_run, series
    ) -> None:
        """Process a block one chunk run at a time, sampling cumulative FS."""
        n_steps = max((len(m) for m in block.lines), default=0)
        for start in range(0, n_steps, steps_per_run):
            stop = min(start + steps_per_run, n_steps)
            sub = tuple(m[start:stop] for m in block.lines)
            detector.process_block(sub, write_mask, thread_order=self.thread_order)
            series.append(detector.stats.fs_cases)
