"""Step 2 of the model: cache line ownership lists (Section III-B).

For every lockstep step and every thread, the ownership list is the
ordered sequence of (cache line, read/write) pairs the thread touches in
that innermost iteration.  With arrays placed line-aligned by the
:class:`~repro.ir.AddressSpace`, each static reference reduces to one
affine address function, so a whole block of steps becomes one
``[steps × refs]`` integer matrix per thread — computed with NumPy dot
products, not per-iteration AST walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import AddressSpace, ArrayRef
from repro.model.schedule import IterationSpace, LockstepEnumerator


@dataclass(frozen=True)
class OwnershipBlock:
    """Ownership lists for a contiguous range of lockstep steps.

    Attributes
    ----------
    start_step:
        First lockstep step covered by the block.
    lines:
        Per thread, an ``[n_steps_t, n_refs]`` array of cache line ids
        (``n_steps_t`` may be smaller than other threads' at the tail).
    """

    start_step: int
    lines: tuple[np.ndarray, ...]


class OwnershipListGenerator:
    """Generates cache line ownership lists for all threads.

    Parameters
    ----------
    nest:
        Bound, validated parallel loop nest.
    num_threads:
        Executing thread count.
    space:
        Address space with (or accepting) the nest's arrays; one is
        created and populated if not supplied.
    line_size:
        Cache line size in bytes.
    block_steps:
        Lockstep steps per emitted block (memory/speed trade-off).
    """

    def __init__(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        line_size: int,
        space: AddressSpace | None = None,
        block_steps: int = 8192,
    ) -> None:
        self.nest = nest
        self.num_threads = num_threads
        self.line_size = line_size
        self.space = space or AddressSpace()
        self.refs: tuple[ArrayRef, ...] = nest.innermost_accesses()
        if not self.refs:
            raise ValueError(
                f"nest {nest.name!r} has no innermost array accesses to model"
            )
        for ref in self.refs:
            self.space.place(ref.array)
        self.enum = LockstepEnumerator(nest, num_threads, block_steps)
        #: static write mask, aligned with ``refs``
        self.write_mask: np.ndarray = np.array(
            [r.is_write for r in self.refs], dtype=bool
        )
        self._addr_exprs = [self.space.address_expr(r) for r in self.refs]

    @property
    def iteration_space(self) -> IterationSpace:
        return self.enum.space

    def addresses_for_env(self, env, length: int | None = None) -> np.ndarray:
        """``[n_steps, n_refs]`` byte addresses for one thread's env block.

        Raw addresses serve byte/word-granularity consumers such as the
        runtime-detector baseline; the model itself works on line ids.
        """
        if not env:
            return np.empty((0, len(self.refs)), dtype=np.int64)
        n = len(next(iter(env.values())))
        out = np.empty((n, len(self.refs)), dtype=np.int64)
        for k, expr in enumerate(self._addr_exprs):
            out[:, k] = expr.eval_vectorized(env, length=n)
        return out

    def lines_for_env(self, env, length: int | None = None) -> np.ndarray:
        """``[n_steps, n_refs]`` line ids for one thread's env block."""
        return self.addresses_for_env(env, length) // self.line_size

    def blocks(self, max_steps: int | None = None) -> Iterator[OwnershipBlock]:
        """Yield ownership blocks in lockstep order."""
        for start, envs in self.enum.blocks(max_steps):
            yield OwnershipBlock(
                start_step=start,
                lines=tuple(self.lines_for_env(e) for e in envs),
            )

    # -- conveniences for tests/analysis --------------------------------------

    def full_matrix(self, thread: int, max_steps: int | None = None) -> np.ndarray:
        """All line ids for one thread (small problems / tests only)."""
        parts: list[np.ndarray] = []
        for block in self.blocks(max_steps):
            parts.append(block.lines[thread])
        if not parts:
            return np.empty((0, len(self.refs)), dtype=np.int64)
        return np.vstack(parts)

    def touched_lines(self, max_steps: int | None = None) -> set[int]:
        """All distinct cache lines touched by any thread."""
        out: set[int] = set()
        for block in self.blocks(max_steps):
            for mat in block.lines:
                out.update(np.unique(mat).tolist())
        return out
