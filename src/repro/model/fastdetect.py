"""Vectorized fast path for the FS detector (the model's hot engine).

:class:`FastFSDetector` processes an entire lockstep block with NumPy
array operations instead of the reference detector's per-access Python
loop.  It is **result-identical** to :class:`~repro.model.detector.
FSDetector` — same ``FSStats`` counters, same per-thread LRU stacks
(content, order *and* M/S states), same holder/writer bitmasks — which
the property suite (``tests/test_fastdetect.py``) asserts on random
traces and the benchmark harness asserts on every table/figure config.

How it works
------------
In ``invalidate`` mode the per-line coherence state collapses to
``(owner, holders)``: a write sets ``writers[line] = {t}`` and a read
clears all foreign writer bits, so at most one writer exists at any
time.  With that invariant, and as long as **no evicted line interacts
with any in-block access**, lines evolve independently — the only
cross-line coupling in the detector is LRU capacity pressure.  The
fast path therefore:

1. flattens the block into ``(line, thread, timestamp, is_write)``
   event arrays, where the timestamp encodes the lockstep interleaving
   (step-major, then thread order, then program order of references);
2. groups events by line (``np.lexsort``) and splits each group into
   *segments* at write events — within a segment the owner is constant
   until the first foreign read downgrades it;
3. evaluates φ/mask per segment: the write leading a segment is an FS
   write case iff the previous segment (or the carried state) ends with
   a foreign owner; the first foreign read of a segment is the single
   FS read case + downgrade the reference detector would count;
   misses are first occurrences of ``(segment, thread)`` outside the
   segment's base holder mask; invalidations are popcounts of the
   holder mask a write destroys — all with ``reduceat``/``unique``;
4. writes the final ``(owner, holders)`` per line back into the dicts
   and reconstructs each thread's LRU stack exactly: surviving
   untouched lines keep their relative order, touched-and-held lines
   re-enter above them ordered by their last own-access timestamp —
   precisely where the reference's pop/re-insert discipline puts them.

Capacity pressure is handled in the common *streaming* shape: when the
``K`` evictions a thread's stack needs (``|stack| + |new lines| −
capacity``) all land on its ``K`` least-recently-used entries and none
of those entries is touched by *any* thread in the block, the evictions
cannot interact with any in-block access — the reference would pop
exactly those ``K`` entries — so the fast path applies them as a
batched epilogue.  Blocks where an eviction candidate *is* re-touched
(LRU thrashing), ``literal``-mode detectors and thread counts beyond
the 63-bit mask width fall back transparently to the reference scalar
path, so `FastFSDetector` is safe to use unconditionally; the
``detector_fast_blocks_total`` / ``detector_fallback_blocks_total``
counters make the split observable.
"""

from __future__ import annotations

from itertools import islice
from typing import Sequence

import numpy as np

from repro.model.detector import FSDetector
from repro.model.stackdist import MODIFIED, SHARED
from repro.obs import get_registry
from repro.resilience.errors import ModelError

__all__ = [
    "AUTO_REFERENCE_MAX_ACCESSES",
    "ENGINES",
    "MAX_FAST_THREADS",
    "MIN_FAST_EVENTS",
    "FastFSDetector",
    "make_detector",
    "resolve_engine",
]

#: Valid values for the model's ``engine`` knob.
ENGINES = ("auto", "jit", "fast", "reference")

#: The vectorized core keeps thread-holder sets in uint64 bitmasks;
#: thread counts beyond this fall back to the reference detector.
MAX_FAST_THREADS = 63

#: Blocks with fewer total events than this run through the scalar
#: reference path — the array setup cost exceeds the per-access loop.
MIN_FAST_EVENTS = 192

#: Measured crossover for ``engine="auto"``: analyses whose *total*
#: modeled access count falls below this run the scalar reference
#: detector — on tiny/table-sized traces the vectorized machinery's
#: fixed setup cost exceeds the whole per-access loop (BENCH_model.json
#: showed 0.8× on an 8×1 table config before this gate).  Measured on
#: the paper machine the break-even sits near 500–800 accesses (0.87×
#: at 192, 0.97× at 384, 1.34× at 768, 3.1× at 9k); small-cap machines
#: whose eviction churn dominates stay reference-friendly well past
#: that, so the gate is set a power-of-two above break-even where a
#: misroute in either direction costs under a millisecond.  Callers
#: that know the trace size pass it as
#: ``resolve_engine(..., accesses=...)``; without the hint ``auto``
#: behaves as before.
AUTO_REFERENCE_MAX_ACCESSES = 4096

_POP8: np.ndarray | None = None


def _popcount(x: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (with pre-2.0 fallback)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(x)
    global _POP8
    if _POP8 is None:
        _POP8 = np.array(
            [bin(i).count("1") for i in range(256)], dtype=np.int64
        )
    x = np.asarray(x, dtype=np.uint64)
    out = np.zeros(x.shape, dtype=np.int64)
    for shift in range(0, 64, 8):
        out += _POP8[((x >> np.uint64(shift)) & np.uint64(0xFF)).astype(np.intp)]
    return out


def resolve_engine(
    engine: str,
    mode: str,
    num_threads: int,
    accesses: int | None = None,
) -> str:
    """Resolve the ``engine`` knob to a concrete detector engine.

    Preference order by availability and trace size (all engines are
    result-identical, so this is a pure performance decision):

    * ``"jit"`` resolves to itself when the optional numba toolchain is
      usable (:func:`repro.model.jitdetect.jit_available`) and falls
      back transparently to ``"fast"`` otherwise — the documented
      no-dependency contract.
    * ``"auto"`` prefers jit → fast → reference: the scalar reference
      path below the measured :data:`AUTO_REFERENCE_MAX_ACCESSES`
      crossover (when the caller supplies the ``accesses`` hint — tiny
      traces pay more in array setup than the whole scalar loop costs),
      otherwise the jit tier when available, the vectorized fast path
      when the configuration permits it (``invalidate`` mode,
      ≤ :data:`MAX_FAST_THREADS` threads), and reference last.
    * Explicit ``"fast"``/``"reference"`` are honoured as given — the
      fast detector still falls back block-by-block on unsupported
      blocks.
    """
    if engine not in ENGINES:
        raise ModelError(
            f"unknown detector engine {engine!r}; use one of {ENGINES}"
        )
    if engine == "jit":
        from repro.model.jitdetect import jit_available

        return "jit" if jit_available() else "fast"
    if engine != "auto":
        return engine
    if accesses is not None and accesses < AUTO_REFERENCE_MAX_ACCESSES:
        return "reference"
    if mode == "invalidate" and num_threads <= MAX_FAST_THREADS:
        from repro.model.jitdetect import jit_available

        return "jit" if jit_available() else "fast"
    return "reference"


def make_detector(
    engine: str, num_threads: int, stack_lines: int, mode: str = "invalidate"
) -> FSDetector:
    """Build the detector the resolved engine calls for.

    Returns a :class:`~repro.model.jitdetect.JitFSDetector` for
    ``"jit"`` (resolved), a :class:`FastFSDetector` for ``"fast"`` and
    a reference :class:`~repro.model.detector.FSDetector` otherwise;
    all produce identical results, so callers may treat the choice as a
    pure performance knob.
    """
    resolved = resolve_engine(engine, mode, num_threads)
    if resolved == "jit":
        from repro.model.jitdetect import JitFSDetector

        return JitFSDetector(num_threads, stack_lines, mode=mode)
    cls = FastFSDetector if resolved == "fast" else FSDetector
    return cls(num_threads, stack_lines, mode=mode)


class FastFSDetector(FSDetector):
    """Drop-in detector with a vectorized block path (see module docs).

    Exposes ``fast_blocks`` / ``fallback_blocks`` counters so callers
    (and tests) can verify which path ran.  All inherited APIs —
    single-access, fingerprinting, state shifting, inspection — operate
    on the same underlying structures and remain valid.
    """

    def __init__(
        self, num_threads: int, stack_lines: int, mode: str = "invalidate"
    ) -> None:
        super().__init__(num_threads, stack_lines, mode=mode)
        #: blocks processed by the vectorized core
        self.fast_blocks = 0
        #: blocks routed to the reference scalar path
        self.fallback_blocks = 0
        #: planned LRU pops for the current block (set by eligibility)
        self._block_evictions: tuple[tuple[int, int], ...] = ()
        registry = get_registry()
        self._fast_counter = registry.counter(
            "detector_fast_blocks_total",
            "lockstep blocks processed by the vectorized detector core",
        ).labels(mode=mode)
        self._fallback_counter = registry.counter(
            "detector_fallback_blocks_total",
            "lockstep blocks that fell back to the reference scalar path",
        ).labels(mode=mode)

    # -- dispatch ---------------------------------------------------------------

    def _process_block(
        self,
        thread_lines: Sequence[np.ndarray],
        write_mask: np.ndarray,
        thread_order: Sequence[int] | None = None,
    ) -> None:
        order = tuple(thread_order) if thread_order is not None else tuple(
            range(self.num_threads)
        )
        if sorted(order) != list(range(self.num_threads)):
            raise ModelError("thread_order must be a permutation of thread ids")
        if self.mode != "invalidate" or self.num_threads > MAX_FAST_THREADS:
            self.fallback_blocks += 1
            self._fallback_counter.inc()
            super()._process_block(thread_lines, write_mask, thread_order)
            return
        self._dispatch(thread_lines, write_mask, order)

    def _dispatch(
        self,
        thread_lines: Sequence[np.ndarray],
        write_mask: np.ndarray,
        order: tuple[int, ...],
    ) -> None:
        """Route a block to the fast core, subdividing under pressure.

        Processing a lockstep block is equivalent to processing any
        step-axis split of it in sequence, so when a big block fails the
        capacity checks — e.g. it alone streams more new lines than the
        stack holds, or its eviction prefix reaches into recently-used
        lines — halving it shrinks the per-piece eviction demand until
        the pieces qualify.  Genuinely thrashing pieces bottom out in
        the scalar path.
        """
        if self._fast_eligible(thread_lines):
            self.fast_blocks += 1
            self._fast_counter.inc()
            self._process_block_fast(thread_lines, write_mask, order)
            return
        n_steps = max((len(m) for m in thread_lines), default=0)
        total = sum(m.size for m in thread_lines)
        if n_steps >= 2 and total >= 2 * MIN_FAST_EVENTS:
            h = n_steps // 2
            self._dispatch(
                tuple(m[:h] for m in thread_lines), write_mask, order
            )
            self._dispatch(
                tuple(m[h:] for m in thread_lines), write_mask, order
            )
            return
        self.fallback_blocks += 1
        self._fallback_counter.inc()
        super()._process_block(thread_lines, write_mask, order)

    def _fast_eligible(self, thread_lines: Sequence[np.ndarray]) -> bool:
        """Whether this block can run vectorized (planning evictions).

        The per-line decomposition is exact when evictions cannot
        interact with in-block accesses.  A thread's stack grows solely
        by insertion of *new* lines, so it needs exactly ``K = |stack| +
        |new lines| − capacity`` evictions (when positive).  The
        reference pops the current LRU entry at each overflow; if the
        ``K`` least-recently-used entries at block start are untouched
        by **every** thread, those are exactly the entries it would pop
        (untouched entries never move, so the LRU front stays inside
        that prefix until it is exhausted), no evicted line is
        re-accessed, and no access observes a holder bit an eviction
        cleared.  The planned ``(thread, K)`` pops are stashed in
        ``_block_evictions`` for the vectorized core's epilogue; any
        violation falls back to the scalar path.
        """
        self._block_evictions: tuple[tuple[int, int], ...] = ()
        if self.mode != "invalidate" or self.num_threads > MAX_FAST_THREADS:
            return False
        # Tiny blocks (per-run series sampling, single steps) are faster
        # through the scalar path than through the array machinery's
        # fixed setup cost.
        if sum(m.size for m in thread_lines) < MIN_FAST_EVENTS:
            return False
        cap = self.stack_lines
        tight: list[int] = []
        for t, mat in enumerate(thread_lines):
            if not mat.size:
                continue
            held = len(self._stacks[t])
            if held + mat.size <= cap:  # cheap bound, skips the scans
                continue
            # distinct lines ≤ the value range they span
            span = int(mat.max()) - int(mat.min()) + 1
            if held + span <= cap:
                continue
            tight.append(t)
        if not tight:
            return True
        # Upper-bound per-thread eviction demand with |distinct touched|
        # (≥ |new lines|, the true insertion count): exactness of the
        # *count* is the core's job (section 4d); eligibility only needs
        # a prefix long enough to cover any possible victim, and the
        # few re-touched held lines the bound overcounts sit far above
        # the LRU front in streaming traces anyway.
        evict: list[tuple[int, int]] = []
        uniqs: list[np.ndarray] = []
        for t in tight:
            stack = self._stacks[t]
            u = np.unique(thread_lines[t])
            uniqs.append(u)
            k = len(stack) + int(u.size) - cap
            if k <= 0:
                continue
            if k > len(stack):
                return False  # would evict lines inserted this block
            evict.append((t, k))
        if not evict:
            return True
        # The planned victims must be untouched by *any* thread.
        tight_set = set(tight)
        extra = [
            np.unique(m)
            for t, m in enumerate(thread_lines)
            if m.size and t not in tight_set
        ]
        touched = np.unique(np.concatenate(uniqs + extra))
        for t, k in evict:
            victims = np.fromiter(
                islice(self._stacks[t], k), dtype=np.int64, count=k
            )
            pos = np.searchsorted(touched, victims)
            pos[pos == touched.size] = 0  # clamp; re-check below
            if bool(np.any(touched[pos] == victims)):
                return False  # LRU thrash: timing matters, bail out
        self._block_evictions = tuple(evict)
        return True

    # -- the vectorized core ------------------------------------------------------

    def _process_block_fast(
        self,
        thread_lines: Sequence[np.ndarray],
        write_mask: np.ndarray,
        order: tuple[int, ...],
    ) -> None:
        stats = self.stats
        T = self.num_threads
        writes = np.asarray(write_mask, dtype=bool)
        R = int(writes.size)
        n_steps = max((len(m) for m in thread_lines), default=0)
        stats.steps += n_steps
        if R == 0 or n_steps == 0:
            return

        # 1.+2. Flatten the block into (line, timestamp) events and sort
        # by line, timestamps ascending within each line.  The timestamp
        # encodes the reference interleaving — step-major, then position
        # in the thread order, then program order of references — and
        # also *determines* the accessing thread and the write flag, so
        # the common case packs each event into one int64 sort key
        # ``line · ts_span + ts`` and recovers everything after an
        # index-free ``np.sort``.  Astronomical line ids fall back to a
        # two-key lexsort over explicit arrays.
        posof = {t: i for i, t in enumerate(order)}
        stride = T * R
        ts_span = n_steps * stride  # timestamps live in [0, ts_span)
        max_line = max(
            (int(m.max()) for m in thread_lines if m.size), default=0
        )
        min_line = min(
            (int(m.min()) for m in thread_lines if m.size), default=0
        )
        packed = min_line >= 0 and max_line < (2**62) // ts_span
        # Per-position lookup tables (``pos_ref`` = ts mod stride encodes
        # the accessing thread and the reference): one small gather
        # replaces several full-length arithmetic passes.
        order_arr = np.asarray(order, dtype=np.int64)
        th_tab = np.repeat(order_arr, R)
        w_tab = np.tile(writes, T)
        rb_tab = np.where(
            w_tab, np.uint64(0), np.uint64(1) << th_tab.astype(np.uint64)
        )
        parts: list[np.ndarray] = []
        th_parts: list[np.ndarray] = []
        ts_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        total = 0
        # ts(step, pos, ref) = step·stride + pos·R + ref, precomputed
        # once for the widest thread and sliced per thread.
        base_ts = (
            np.arange(n_steps, dtype=np.int64)[:, None] * stride
            + np.arange(R, dtype=np.int64)[None, :]
        )
        for t in range(T):
            mat = thread_lines[t]
            steps_t = len(mat)
            if steps_t == 0:
                continue
            mat = np.ascontiguousarray(mat, dtype=np.int64)
            if packed:
                part = mat * ts_span + base_ts[:steps_t]
                if posof[t]:
                    part += posof[t] * R
                parts.append(part.reshape(-1))
            else:
                ts_t = base_ts[:steps_t] + posof[t] * R
                parts.append(mat.reshape(-1))
                th_parts.append(np.full(steps_t * R, t, dtype=np.int64))
                ts_parts.append(ts_t.reshape(-1))
                w_parts.append(np.tile(writes, steps_t))
            total += steps_t * R
        stats.accesses += total
        if total == 0:
            return
        N = total
        ar_n = np.arange(N, dtype=np.int64)
        if packed:
            key = parts[0] if len(parts) == 1 else np.concatenate(parts)
            key.sort()
            LA, TS = np.divmod(key, ts_span)
            pos_ref = TS % stride
            TH = th_tab[pos_ref]
            W = w_tab[pos_ref]
        else:
            LA = np.concatenate(parts)
            TH = np.concatenate(th_parts)
            TS = np.concatenate(ts_parts)
            W = np.concatenate(w_parts)
            perm = np.lexsort((TS, LA))
            LA = LA[perm]
            TH = TH[perm]
            TS = TS[perm]
            W = W[perm]
            pos_ref = TS % stride

        gs = np.empty(N, dtype=bool)
        gs[0] = True
        np.not_equal(LA[1:], LA[:-1], out=gs[1:])
        uniq_lines = LA[gs]
        G = int(uniq_lines.size)
        grp = np.cumsum(gs) - 1

        # Carried per-line state from the dicts (invalidate-mode
        # invariant: at most one writer → a single "owner" thread).
        ul = uniq_lines.tolist()
        hget = self._holders.get
        wget = self._writers.get
        carr_holders = np.fromiter(
            (hget(ln, 0) for ln in ul), dtype=np.uint64, count=G
        )
        carr_writers = np.fromiter(
            (wget(ln, 0) for ln in ul), dtype=np.uint64, count=G
        )
        carr_owner = np.full(G, -1, dtype=np.int64)
        wnz = carr_writers != 0
        if wnz.any():
            # exact for single-bit values below 2**63
            carr_owner[wnz] = np.log2(
                carr_writers[wnz].astype(np.float64)
            ).astype(np.int64)

        # 3. Segments: split each group at write events.
        seg_start = W | gs
        seg_starts = np.flatnonzero(seg_start)
        S = int(seg_starts.size)
        seg_of = np.cumsum(seg_start) - 1
        seg_grp = grp[seg_starts]
        seg_is_w = W[seg_starts]
        seg_first = gs[seg_starts]
        seg_thr = TH[seg_starts]

        # Owner while the segment's reads run.
        seg_owner0 = np.where(seg_is_w, seg_thr, carr_owner[seg_grp])

        # First foreign read per segment = the FS-read + downgrade event.
        # ``(TH ^ owner) > 0`` is "foreign read" in two passes: it is 0
        # for the owner itself, negative when there is no owner (-1),
        # and a write event always leads its own segment (owner == TH),
        # so no explicit read mask is needed.
        owner_at = seg_owner0[seg_of]
        fr = (TH ^ owner_at) > 0
        ffr = np.minimum.reduceat(np.where(fr, ar_n, N), seg_starts)
        has_fr = ffr < N
        seg_end_owner = np.where(has_fr, -1, seg_owner0)

        # Holder mask at segment end = base holders ∪ readers (the
        # per-position table maps write events to zero bits).
        read_bits = rb_tab[pos_ref]
        seg_read_mask = np.bitwise_or.reduceat(read_bits, seg_starts)
        seg_wbit = np.uint64(1) << seg_thr.astype(np.uint64)
        seg_base = np.where(seg_is_w, seg_wbit, carr_holders[seg_grp])
        seg_h_end = seg_base | seg_read_mask

        # State seen by each segment's leading write: the previous
        # segment's end state, or the carried state for group-initial
        # segments.
        prev_owner = np.empty(S, dtype=np.int64)
        prev_h = np.empty(S, dtype=np.uint64)
        prev_owner[0] = -1
        prev_owner[1:] = seg_end_owner[:-1]
        prev_h[0] = 0
        prev_h[1:] = seg_h_end[:-1]
        seg_prev_owner = np.where(seg_first, carr_owner[seg_grp], prev_owner)
        seg_prev_h = np.where(seg_first, carr_holders[seg_grp], prev_h)

        # 4a. Write events: FS-write / miss / invalidations.
        wsel = seg_is_w
        w_thr = seg_thr[wsel]
        w_prev_owner = seg_prev_owner[wsel]
        w_prev_h = seg_prev_h[wsel]
        w_bit = seg_wbit[wsel]
        w_grp = seg_grp[wsel]
        fs_w_sel = (w_prev_owner >= 0) & (w_prev_owner != w_thr)
        w_miss = (w_prev_h & w_bit) == 0
        inv_bits = w_prev_h & ~w_bit
        stats.misses += int(w_miss.sum())
        stats.invalidations += int(_popcount(inv_bits).sum())
        stats.downgrades += int(has_fr.sum())

        # 4b. Read misses: each distinct (segment, thread) reader pair
        # misses exactly once — at its first read — iff the thread is
        # outside the segment's base holder mask.  ``seg_read_mask``
        # already holds the distinct-reader bits per segment, so this is
        # one popcount of the bits *outside* the base mask.
        stats.misses += int(_popcount(seg_read_mask & ~seg_base).sum())

        # 4c. FS cases (φ over the single foreign writer).
        fs_r_idx = ffr[has_fr]
        fs_r_acc = TH[fs_r_idx]
        fs_r_wrt = seg_owner0[has_fr]
        fs_w_acc = w_thr[fs_w_sel]
        fs_w_wrt = w_prev_owner[fs_w_sel]
        n_r = int(fs_r_acc.size)
        n_w = int(fs_w_acc.size)
        if n_r or n_w:
            stats.fs_cases += n_r + n_w
            stats.fs_read_cases += n_r
            stats.fs_write_cases += n_w
            acc = np.concatenate([fs_r_acc, fs_w_acc])
            wrt = np.concatenate([fs_r_wrt, fs_w_wrt])
            # Small dense domains → bincount beats sort-based unique.
            by_thread = stats.fs_by_thread
            cnt = np.bincount(acc, minlength=T)
            for v in np.flatnonzero(cnt).tolist():
                by_thread[v] += int(cnt[v])
            by_line = stats.fs_by_line
            lin_grp = np.concatenate([seg_grp[has_fr], w_grp[fs_w_sel]])
            cnt = np.bincount(lin_grp, minlength=G)
            for g in np.flatnonzero(cnt).tolist():
                by_line[ul[g]] += int(cnt[g])
            by_pair = stats.fs_by_pair
            cnt = np.bincount(wrt * T + acc, minlength=T * T)
            for v in np.flatnonzero(cnt).tolist():
                by_pair[(v // T, v % T)] += int(cnt[v])

        # 4d. Exact eviction demand for capacity-tight threads.  A
        # stack's length rises by one at every miss (insert) and falls
        # by one at every invalidation (foreign-write pop), so with the
        # overflow shed at capacity the total eviction count obeys the
        # reflected-process identity ``K = max(0, peak(held + inserts −
        # pops) − capacity)`` — exact because the shed entries (the LRU
        # prefix, untouched per eligibility) are disjoint from the pop
        # targets (in-block touched lines).  Eligibility's ``K_max``
        # plan only bounds this from above.
        exact_ev: list[tuple[int, int]] = []
        if self._block_evictions:
            cap = self.stack_lines
            w_starts = seg_starts[wsel]
            w_ts = TS[w_starts]
            # First read per (segment, thread): insert iff outside the
            # segment's base holder mask.
            ridx = np.flatnonzero(~W)
            key_r = seg_of[ridx] * T + TH[ridx]
            uk, first_idx = np.unique(key_r, return_index=True)
            r_pos = ridx[first_idx]
            r_seg = uk // T
            r_thr = uk % T
            r_ins = (
                (seg_base[r_seg] >> r_thr.astype(np.uint64))
                & np.uint64(1)
            ) == 0
            r_ts = TS[r_pos]
            for t, _kmax in self._block_evictions:
                tbit = np.uint64(1 << t)
                pop_ts = w_ts[(inv_bits & tbit) != 0]
                ins_ts = np.concatenate(
                    [
                        w_ts[w_miss & (w_thr == t)],
                        r_ts[r_ins & (r_thr == t)],
                    ]
                )
                ts_all = np.concatenate([ins_ts, pop_ts])
                delta = np.concatenate(
                    [
                        np.ones(ins_ts.size, dtype=np.int64),
                        np.full(pop_ts.size, -1, dtype=np.int64),
                    ]
                )
                run = np.cumsum(delta[np.argsort(ts_all)])
                peak = int(run.max()) if run.size else 0
                k = len(self._stacks[t]) + max(peak, 0) - cap
                if k > 0:
                    exact_ev.append((t, k))

        # 5. Write the final per-line state back and rebuild stacks.
        last_seg = np.empty(S, dtype=bool)
        last_seg[-1] = True
        np.not_equal(seg_grp[1:], seg_grp[:-1], out=last_seg[:-1])
        new_owner_l = seg_end_owner[last_seg].tolist()
        new_hold_l = seg_h_end[last_seg].tolist()
        old_hold_l = carr_holders.tolist()
        carr_owner_l = carr_owner.tolist()

        holders_d = self._holders
        writers_d = self._writers
        stacks = self._stacks

        # Last own-access event per (line, thread) via an ordered
        # scatter: events arrive ts-ascending per key, and duplicate
        # fancy-index assignments keep the last value written.
        last_pos = np.full(G * T, -1, dtype=np.int64)
        last_pos[grp * T + TH] = ar_n
        pairs2 = np.flatnonzero(last_pos >= 0)
        lts = TS[last_pos[pairs2]].tolist()
        lg = (pairs2 // T).tolist()
        lthr = (pairs2 % T).tolist()
        touched_keys = set(pairs2.tolist())

        for i, line in enumerate(ul):
            nh = new_hold_l[i]
            no = new_owner_l[i]
            holders_d[line] = nh
            writers_d[line] = (1 << no) if no >= 0 else 0
            # Threads that lost their copy (foreign-write invalidation).
            lost = old_hold_l[i] & ~nh
            while lost:
                low = lost & -lost
                stacks[low.bit_length() - 1].pop(line, None)
                lost ^= low
            # Carried owner kept its copy but never touched the line in
            # this block: its Modified copy was downgraded *in place*
            # (no LRU motion) by the foreign read.
            c = carr_owner_l[i]
            if (
                c >= 0
                and no != c
                and (nh >> c) & 1
                and (i * T + c) not in touched_keys
            ):
                st = stacks[c]
                if line in st:
                    st[line] = SHARED

        # Touched-and-held lines re-enter each stack above the untouched
        # survivors, ordered by last own-access timestamp — exactly the
        # reference's pop/re-insert discipline.
        per_ins: list[list[tuple[int, int]]] = [[] for _ in range(T)]
        for g, t, ts in zip(lg, lthr, lts):
            if (new_hold_l[g] >> t) & 1:
                per_ins[t].append((ts, g))
        for t, ins in enumerate(per_ins):
            if not ins:
                continue
            ins.sort()
            st = stacks[t]
            pop = st.pop
            for _, g in ins:
                line = ul[g]
                pop(line, None)
                st[line] = MODIFIED if new_owner_l[g] == t else SHARED

        # 6. Evictions (streaming regime): pop each thread's K LRU-front
        # entries — proven untouched by eligibility, so they are exactly
        # the entries the reference would have popped — and clear that
        # thread's holder/writer bits, mirroring the scalar epilogue of
        # ``_process_one``.
        for t, k in exact_ev:
            st = stacks[t]
            popfront = st.popitem
            hget2 = holders_d.get
            wget2 = writers_d.get
            mask = ~(1 << t)
            for _ in range(k):
                ev, _ = popfront(last=False)
                holders_d[ev] = hget2(ev, 0) & mask
                writers_d[ev] = wget2(ev, 0) & mask
            stats.evictions += k
        self._block_evictions = ()

        # The MRU memo only enables scalar-path skips; clearing it is
        # always safe.
        self._mru_line = [None] * T
        self._mru_mod = [False] * T
