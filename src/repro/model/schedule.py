"""Static round-robin scheduling and lockstep iteration enumeration.

The paper assumes "chunks of a loop are distributed to threads in a
round-robin fashion" (Section III).  This module turns a bound
:class:`~repro.ir.ParallelLoopNest` plus (threads, chunk) into the
per-thread streams of *innermost iteration points* the ownership-list
generator walks, in lockstep order: at global step *s*, every thread
executes its *s*-th innermost iteration.

Everything is produced as NumPy index arrays in blocks, so downstream
address generation is a dot product per reference rather than a Python
loop per iteration (vectorization rule from the HPC guides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.ir.loops import ParallelLoopNest
from repro.util import ceil_div


def static_chunk_positions(
    trip: int, num_threads: int, chunk: int, thread: int
) -> np.ndarray:
    """Parallel-loop iteration *positions* assigned to one thread.

    Round-robin static schedule: chunk run ``r`` hands positions
    ``[r·T·c + t·c, r·T·c + (t+1)·c)`` to thread ``t``, clipped to
    ``trip``.

    >>> static_chunk_positions(10, 2, 2, 0)
    array([0, 1, 4, 5, 8, 9])
    >>> static_chunk_positions(10, 2, 2, 1)
    array([2, 3, 6, 7])
    """
    if trip < 0 or num_threads <= 0 or chunk <= 0:
        raise ValueError("trip >= 0, num_threads > 0, chunk > 0 required")
    if not 0 <= thread < num_threads:
        raise ValueError(f"thread {thread} out of range [0, {num_threads})")
    period = num_threads * chunk
    runs = ceil_div(trip, period) if trip else 0
    starts = np.arange(runs, dtype=np.int64) * period + thread * chunk
    pos = (starts[:, None] + np.arange(chunk, dtype=np.int64)[None, :]).ravel()
    return pos[pos < trip]


def effective_chunk(nest: ParallelLoopNest, num_threads: int) -> int:
    """The concrete chunk size: the clause value, or the default static
    blocking ``ceil(trip / T)`` when no chunk was given."""
    chunk = nest.schedule.chunk
    if chunk is not None:
        return chunk
    trip = nest.trip_counts()[nest.parallel_depth()]
    return max(ceil_div(trip, num_threads), 1)


@dataclass(frozen=True)
class IterationSpace:
    """Decomposed shape of a nest execution under a static schedule.

    ``outer_total``/``inner_total`` are the products of trip counts
    above/below the parallel depth; ``parallel_trip`` is the worksharing
    loop's own count.
    """

    nest: ParallelLoopNest
    num_threads: int
    chunk: int
    outer_total: int
    parallel_trip: int
    inner_total: int

    @classmethod
    def of(cls, nest: ParallelLoopNest, num_threads: int) -> "IterationSpace":
        trips = nest.trip_counts()
        d = nest.parallel_depth()
        outer = 1
        for t in trips[:d]:
            outer *= t
        inner = 1
        for t in trips[d + 1 :]:
            inner *= t
        return cls(
            nest=nest,
            num_threads=num_threads,
            chunk=effective_chunk(nest, num_threads),
            outer_total=outer,
            parallel_trip=trips[d],
            inner_total=inner,
        )

    @property
    def steps_per_thread(self) -> int:
        """Lockstep steps = the paper's ``All_num_iters / num_threads``.

        Threads with fewer assigned chunks idle at the tail; the step
        count follows the busiest thread (thread 0).
        """
        assigned = len(
            static_chunk_positions(self.parallel_trip, self.num_threads, self.chunk, 0)
        )
        return self.outer_total * assigned * self.inner_total

    @property
    def total_chunk_runs(self) -> int:
        """Chunk runs over the whole nest (the paper's ``x_max``)."""
        per_execution = ceil_div(self.parallel_trip, self.num_threads * self.chunk)
        return self.outer_total * per_execution

    @property
    def steps_per_chunk_run(self) -> int:
        """Lockstep steps consumed by one chunk run."""
        return self.chunk * self.inner_total


class LockstepEnumerator:
    """Produces per-thread loop-variable index blocks in lockstep order.

    For thread ``t``, step ``s`` decomposes as
    ``s = ((o · L) + p) · I + q`` where ``o`` indexes the outer
    iterations, ``p`` the thread's assigned parallel positions, and ``q``
    the inner iterations; this class evaluates that decomposition for
    whole step ranges at once.
    """

    def __init__(
        self, nest: ParallelLoopNest, num_threads: int, block_steps: int = 8192
    ) -> None:
        self.nest = nest
        self.space = IterationSpace.of(nest, num_threads)
        self.num_threads = num_threads
        self.block_steps = block_steps
        trips = nest.trip_counts()
        d = nest.parallel_depth()
        loops = nest.loops()
        self._outer_loops = loops[:d]
        self._parallel_loop = loops[d]
        self._inner_loops = loops[d + 1 :]
        self._outer_trips = trips[:d]
        self._inner_trips = trips[d + 1 :]
        # Per-thread assigned parallel positions.
        self._positions = [
            static_chunk_positions(
                self.space.parallel_trip, num_threads, self.space.chunk, t
            )
            for t in range(num_threads)
        ]

    @property
    def parallel_loop(self):
        """The worksharing loop (public accessor for model consumers)."""
        return self._parallel_loop

    def thread_steps(self, thread: int) -> int:
        """Total innermost iterations executed by one thread."""
        return (
            self.space.outer_total
            * len(self._positions[thread])
            * self.space.inner_total
        )

    @property
    def max_steps(self) -> int:
        return max(self.thread_steps(t) for t in range(self.num_threads))

    def env_block(
        self, thread: int, start: int, stop: int
    ) -> Mapping[str, np.ndarray]:
        """Loop-variable values for steps [start, stop) of one thread.

        Steps beyond the thread's work are clipped; the returned arrays
        may be shorter than ``stop - start`` (empty when fully idle).
        """
        own = self.thread_steps(thread)
        stop = min(stop, own)
        if stop <= start:
            return {}
        s = np.arange(start, stop, dtype=np.int64)
        inner_total = self.space.inner_total
        npos = len(self._positions[thread])
        q = s % inner_total
        rest = s // inner_total
        p = rest % npos
        o = rest // npos

        env: dict[str, np.ndarray] = {}
        # Outer loops: row-major decomposition of o.
        acc = o
        for lp, trip in zip(
            reversed(self._outer_loops), reversed(self._outer_trips)
        ):
            idx = acc % trip
            acc = acc // trip
            env[lp.var] = lp.lower.as_int() + idx * lp.step
        # Parallel loop.
        ppos = self._positions[thread][p]
        env[self._parallel_loop.var] = (
            self._parallel_loop.lower.as_int() + ppos * self._parallel_loop.step
        )
        # Inner loops: row-major decomposition of q.
        acc = q
        for lp, trip in zip(
            reversed(self._inner_loops), reversed(self._inner_trips)
        ):
            idx = acc % trip
            acc = acc // trip
            env[lp.var] = lp.lower.as_int() + idx * lp.step
        return env

    def blocks(
        self, max_steps: int | None = None
    ) -> Iterator[tuple[int, list[Mapping[str, np.ndarray]]]]:
        """Iterate lockstep blocks: (start_step, [env per thread]).

        ``max_steps`` truncates the walk (used by the prediction model to
        evaluate only a prefix of chunk runs).
        """
        limit = self.max_steps if max_steps is None else min(max_steps, self.max_steps)
        start = 0
        while start < limit:
            stop = min(start + self.block_steps, limit)
            yield start, [
                self.env_block(t, start, stop) for t in range(self.num_threads)
            ]
            start = stop
