"""Step E of the model: FS prediction via linear regression (Section III-E).

Evaluating every ``All_num_iters / num_threads`` iteration is expensive
for large loops; the paper observes (Fig. 6) that cumulative FS cases
grow linearly with *chunk runs* (one chunk run = ``chunk_size ×
num_threads`` parallel iterations) and fits ``y = a·x + b`` on a short
prefix, then extrapolates to ``x_max``, the total number of chunk runs.

Two fitting rules are provided:

* ``paper`` — the exact closed form printed in the paper:
  ``a = Σ xᵢyᵢ / Σ xᵢ²`` then ``b = Σ(yᵢ − a·xᵢ)/n``.  (This is a
  through-origin slope with a mean-residual intercept, *not* joint OLS —
  we reproduce it faithfully and keep joint OLS alongside.)
* ``ols`` — standard joint least squares on (slope, intercept).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.loops import ParallelLoopNest
from repro.model.fsmodel import FalseSharingModel, FSModelResult
from repro.obs import get_registry, span
from repro.resilience.errors import ModelError


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y = a·x + b`` with goodness diagnostics."""

    a: float
    b: float
    r2: float

    def predict(self, x: float) -> float:
        return self.a * x + self.b


def _r_squared(x: np.ndarray, y: np.ndarray, a: float, b: float) -> float:
    resid = y - (a * x + b)
    ss_res = float(resid @ resid)
    centered = y - y.mean()
    ss_tot = float(centered @ centered)
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def paper_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """The paper's closed-form fit (Section III-E).

    >>> fit = paper_fit(np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 6.0]))
    >>> round(fit.a, 6), round(fit.b, 6)
    (2.0, 0.0)
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or len(x) == 0:
        raise ValueError("x and y must be equal-length non-empty 1-D arrays")
    denom = float(x @ x)
    if denom == 0.0:
        raise ValueError("cannot fit: all x are zero")
    a = float(x @ y) / denom
    b = float(np.mean(y - a * x))
    return LinearFit(a, b, _r_squared(x, y, a, b))


def ols_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Standard joint least squares for slope and intercept."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or len(x) == 0:
        raise ValueError("x and y must be equal-length non-empty 1-D arrays")
    if len(x) == 1:
        return LinearFit(0.0, float(y[0]), 1.0)
    xm, ym = x.mean(), y.mean()
    dx = x - xm
    denom = float(dx @ dx)
    if denom == 0.0:
        return LinearFit(0.0, float(ym), _r_squared(x, y, 0.0, float(ym)))
    a = float(dx @ (y - ym)) / denom
    b = float(ym - a * xm)
    return LinearFit(a, b, _r_squared(x, y, a, b))


_FITTERS = {"paper": paper_fit, "ols": ols_fit}


@dataclass
class FSPrediction:
    """Extrapolated FS count for a whole loop from a sampled prefix."""

    nest_name: str
    num_threads: int
    chunk: int
    sampled_runs: int
    total_runs: int
    fit: LinearFit
    predicted_fs_cases: float
    prefix_result: FSModelResult

    @property
    def speedup_iterations(self) -> float:
        """Iteration-evaluation saving factor vs the full model."""
        if self.prefix_result.steps_evaluated == 0:
            return float("inf")
        full_steps = self.total_runs * max(
            self.prefix_result.steps_evaluated // max(self.sampled_runs, 1), 1
        )
        return full_steps / self.prefix_result.steps_evaluated


class FalseSharingPredictor:
    """Predicts whole-loop FS cases from a short chunk-run prefix.

    Parameters
    ----------
    model:
        The underlying :class:`FalseSharingModel`.
    n_runs:
        Chunk runs to evaluate before extrapolating (the paper uses 20
        for heat diffusion, 50 for DFT, 10 for linear regression).
    method:
        ``"paper"`` or ``"ols"`` fitting rule.
    """

    def __init__(
        self, model: FalseSharingModel, n_runs: int = 20, method: str = "paper"
    ) -> None:
        if n_runs <= 0:
            raise ModelError("n_runs must be positive")
        if method not in _FITTERS:
            raise ModelError(f"unknown fit method {method!r}")
        self.model = model
        self.n_runs = n_runs
        self.method = method

    def predict(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        chunk: int | None = None,
        budget=None,
    ) -> FSPrediction:
        """Sample ``n_runs`` chunk runs and extrapolate to the whole loop.

        ``budget`` (a :class:`~repro.resilience.budget.Budget`) is
        forwarded to the prefix analysis; its steps guard applies to the
        *sampled prefix*, not the whole loop, so a prediction can fit a
        budget that the exact analysis would blow.
        """
        with span(
            "model.predict", kernel=nest.name, threads=num_threads,
            n_runs=self.n_runs,
        ):
            prefix = self.model.analyze(
                nest,
                num_threads,
                chunk=chunk,
                max_chunk_runs=self.n_runs,
                record_series=True,
                budget=budget,
            )
            series = prefix.per_chunk_run
            if series is None or len(series) == 0:
                raise ModelError(
                    f"no chunk runs were evaluated for {nest.name!r}; "
                    "is the loop empty?",
                    code="REPRO-M103",
                )
            x = np.arange(1, len(series) + 1, dtype=np.float64)
            y = series.astype(np.float64)
            with span("regression.fit", method=self.method) as fit_sp:
                fit = _FITTERS[self.method](x, y)
                fit_sp.set(r2=fit.r2, points=len(series))
            total_runs = prefix.total_chunk_runs
            predicted = max(fit.predict(float(total_runs)), 0.0)
        registry = get_registry()
        registry.counter(
            "fs_predictions", "linear-regression FS predictions made"
        ).labels(kernel=nest.name, method=self.method).inc()
        registry.gauge(
            "fs_prediction_r2", "goodness of fit of the last FS prediction"
        ).labels(kernel=nest.name, method=self.method).set(fit.r2)
        return FSPrediction(
            nest_name=prefix.nest_name,
            num_threads=num_threads,
            chunk=prefix.chunk,
            sampled_runs=len(series),
            total_runs=total_runs,
            fit=fit,
            predicted_fs_cases=predicted,
            prefix_result=prefix,
        )
