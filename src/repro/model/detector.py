"""Step 4 of the model: 1-to-All false sharing detection (Section III-D).

When a thread touches a cache line, the detector evaluates the paper's
φ function against every *other* thread's cache state: each state that
holds the line Modified contributes one FS case (Eq. 3), and the mask
function (Eq. 4) excludes the accessing thread's own state.

Thread-holder sets are kept as integer bitmasks, so the 1-to-All
comparison is a single AND + popcount instead of a loop over threads.

Two coherence semantics are provided (see DESIGN.md):

``invalidate`` (default)
    Write-invalidate, matching the protocol the paper describes in its
    background section: a write invalidates all remote copies; a read
    downgrades remote Modified copies to Shared.  φ is evaluated on
    every access.
``literal``
    The purely literal reading of Section III-D: φ is evaluated only
    when the line is *inserted* into the accessing thread's cache state
    (i.e. on own-state misses), and remote states are never changed by
    other threads' accesses.

The per-case cost differs by direction: a *read* of a remotely-modified
line stalls on a cache-to-cache transfer, while a *write* mostly hides
behind the store buffer and pays the invalidation bus cost.  The
detector therefore reports read-FS and write-FS cases separately.
"""

from __future__ import annotations

import hashlib
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.model.stackdist import MODIFIED, SHARED
from repro.obs import get_registry, span
from repro.resilience.errors import ModelError

#: Interned static write tuples, keyed by the raw bytes of the mask.
#: The same nest's write mask arrives once per block, so rebuilding the
#: tuple (and re-boxing every bool) per block is pure overhead; a block
#: now costs one dict lookup instead.
_WRITES_CACHE: dict[bytes, tuple[bool, ...]] = {}


def interned_writes(write_mask: np.ndarray) -> tuple[bool, ...]:
    """The write mask as an interned ``tuple[bool, ...]``.

    Identical masks (by content) return the *same* tuple object, so the
    per-block hot loop binds plain Python bools without any per-block
    conversion cost.
    """
    key = np.asarray(write_mask, dtype=bool).tobytes()
    tup = _WRITES_CACHE.get(key)
    if tup is None:
        tup = tuple(b != 0 for b in key)
        _WRITES_CACHE[key] = tup
    return tup


@dataclass
class FSStats:
    """Counters accumulated by the detector."""

    fs_cases: int = 0
    fs_read_cases: int = 0
    fs_write_cases: int = 0
    accesses: int = 0
    misses: int = 0
    invalidations: int = 0
    downgrades: int = 0
    evictions: int = 0
    steps: int = 0
    fs_by_thread: Counter = field(default_factory=Counter)
    fs_by_line: Counter = field(default_factory=Counter)
    #: (writer thread, accessor thread) -> cases; the inter-thread
    #: conflict matrix used by the diagnostics report.
    fs_by_pair: Counter = field(default_factory=Counter)

    def merge(self, other: "FSStats") -> None:
        self.fs_cases += other.fs_cases
        self.fs_read_cases += other.fs_read_cases
        self.fs_write_cases += other.fs_write_cases
        self.accesses += other.accesses
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.downgrades += other.downgrades
        self.evictions += other.evictions
        self.steps += other.steps
        self.fs_by_thread.update(other.fs_by_thread)
        self.fs_by_line.update(other.fs_by_line)
        self.fs_by_pair.update(other.fs_by_pair)

    #: scalar counters published to the metrics registry, in order
    _SCALARS = (
        "fs_cases", "fs_read_cases", "fs_write_cases", "accesses",
        "misses", "invalidations", "downgrades", "evictions", "steps",
    )

    def publish(self, **labels) -> None:
        """Push the scalar counters into the process metrics registry.

        Each counter lands under its own metric name with the given
        labels, e.g. ``fs_cases{kernel="heat",threads="4"}`` — the
        bridge between the detector's per-run accumulation and the obs
        layer's cross-run registry (see docs/OBSERVABILITY.md).
        """
        registry = get_registry()
        for name in self._SCALARS:
            registry.counter(
                name, f"FS detector counter {name!r}"
            ).labels(**labels).inc(getattr(self, name))


class FSDetector:
    """Per-thread cache states + φ/mask false-sharing counting.

    Parameters
    ----------
    num_threads:
        Number of cache states (one per thread).
    stack_lines:
        Capacity of each fully-associative LRU cache state.
    mode:
        ``"invalidate"`` or ``"literal"`` (see module docstring).
    """

    def __init__(
        self, num_threads: int, stack_lines: int, mode: str = "invalidate"
    ) -> None:
        if num_threads <= 0:
            raise ModelError("num_threads must be positive")
        if stack_lines <= 0:
            raise ModelError("stack_lines must be positive")
        if mode not in ("invalidate", "literal"):
            raise ModelError(f"unknown detector mode {mode!r}")
        self.num_threads = num_threads
        self.stack_lines = stack_lines
        self.mode = mode
        # line -> state, insertion order == LRU order (first = LRU).
        self._stacks: list[OrderedDict[int, str]] = [
            OrderedDict() for _ in range(num_threads)
        ]
        self._holders: dict[int, int] = {}
        self._writers: dict[int, int] = {}
        # Fast-path memo: each thread's most-recently-used line and
        # whether it is held Modified.  Re-touching the MRU line cannot
        # change LRU order, states or FS counts (a write additionally
        # requires the line to already be Modified), so such accesses
        # bypass the full transition — the dominant pattern for
        # accumulator kernels (repeated ``s[j] += ...``).
        self._mru_line: list[int | None] = [None] * num_threads
        self._mru_mod: list[bool] = [False] * num_threads
        self.stats = FSStats()

    # -- single-access API (tests, tiny traces) --------------------------------

    def access(self, thread: int, line: int, is_write: bool) -> int:
        """Process one access; returns the FS cases it generated."""
        before = self.stats.fs_cases
        self._process_one(thread, int(line), bool(is_write))
        self.stats.accesses += 1
        return self.stats.fs_cases - before

    # -- block API (the model's hot path) ---------------------------------------

    def process_block(
        self,
        thread_lines: Sequence[np.ndarray],
        write_mask: np.ndarray,
        thread_order: Sequence[int] | None = None,
    ) -> None:
        """Process a lockstep block of ownership lists.

        ``thread_lines[t]`` is an ``[n_steps_t, n_refs]`` line-id matrix;
        within each step, threads are processed in id order — the
        deterministic interleaving the lockstep model defines — unless
        ``thread_order`` overrides it (used by the interleaving-order
        ablation); each thread performs its references in program order.
        """
        with span("detector.process_block") as sp:
            before = self.stats.fs_cases
            self._process_block(thread_lines, write_mask, thread_order)
            sp.set(
                steps=self.stats.steps,
                fs_cases_delta=self.stats.fs_cases - before,
            )

    def _process_block(
        self,
        thread_lines: Sequence[np.ndarray],
        write_mask: np.ndarray,
        thread_order: Sequence[int] | None = None,
    ) -> None:
        writes = interned_writes(write_mask)
        order = tuple(thread_order) if thread_order is not None else tuple(
            range(self.num_threads)
        )
        if sorted(order) != list(range(self.num_threads)):
            raise ModelError("thread_order must be a permutation of thread ids")
        private = self._block_private_sets(thread_lines)
        # Hoist every per-access conversion out of the hot loop: one
        # tolist() per thread matrix, and one (id, rows, length, private)
        # tuple per thread so the step loop binds locals instead of
        # re-indexing parallel lists.
        per_thread: list[tuple[int, list, int, set[int]]] = []
        n_steps = 0
        for t in order:
            rows = thread_lines[t].tolist()
            length = len(rows)
            if length > n_steps:
                n_steps = length
            per_thread.append((t, rows, length, private[t]))
        process = self._process_one
        process_private = self._process_private
        mru_line = self._mru_line
        mru_mod = self._mru_mod
        n_refs = len(writes)
        ref_range = range(n_refs)
        accesses = 0
        for s in range(n_steps):
            for t, rows, length, priv in per_thread:
                if s >= length:
                    continue
                row = rows[s]
                for k in ref_range:
                    line = row[k]
                    w = writes[k]
                    # MRU fast path (see __init__): a re-touch of the MRU
                    # line with sufficient ownership is a guaranteed no-op.
                    if line == mru_line[t] and (mru_mod[t] or not w):
                        continue
                    if line in priv:
                        process_private(t, line, w)
                    else:
                        process(t, line, w)
                accesses += n_refs
        self.stats.accesses += accesses
        self.stats.steps += n_steps

    def _block_private_sets(
        self, thread_lines: Sequence[np.ndarray]
    ) -> list[set[int]]:
        """Per-thread sets of lines provably free of φ interactions.

        A line is *block-private* to thread ``t`` when no other thread
        touches it anywhere in this block **and** no other thread's cache
        state currently holds it (Shared or Modified).  Accesses to such
        lines can never produce FS cases, downgrades or invalidations —
        only LRU motion, misses and evictions — so they go through
        :meth:`_process_private`, skipping the φ/mask machinery entirely.
        This extends the MRU memo to whole working sets: under
        large-chunk schedules most threads' line ranges never intersect.
        """
        uniqs = [
            np.unique(mat) if mat.size else np.empty(0, dtype=np.int64)
            for mat in thread_lines
        ]
        if len(uniqs) > 1:
            vals, counts = np.unique(
                np.concatenate(uniqs), return_counts=True
            )
            shared = set(vals[counts > 1].tolist())
        else:
            shared = set()
        holders = self._holders
        writers = self._writers
        out: list[set[int]] = []
        for t, uniq in enumerate(uniqs):
            foreign = ~(1 << t)
            out.append({
                ln
                for ln in uniq.tolist()
                if ln not in shared
                and holders.get(ln, 0) & foreign == 0
                and writers.get(ln, 0) & foreign == 0
            })
        return out

    # -- core transition -----------------------------------------------------------

    def _process_one(self, t: int, line: int, is_write: bool) -> None:
        stats = self.stats
        bit = 1 << t
        stack = self._stacks[t]
        prev = stack.pop(line, None)
        hit = prev is not None

        writers_mask = self._writers.get(line, 0)
        foreign_writers = writers_mask & ~bit

        if self.mode == "invalidate":
            count_fs = foreign_writers != 0
        else:  # literal: φ evaluated only on insertion into own state
            count_fs = (not hit) and foreign_writers != 0

        if count_fs:
            n = foreign_writers.bit_count()
            stats.fs_cases += n
            if is_write:
                stats.fs_write_cases += n
            else:
                stats.fs_read_cases += n
            stats.fs_by_thread[t] += n
            stats.fs_by_line[line] += n
            rem = foreign_writers
            while rem:
                low = rem & -rem
                stats.fs_by_pair[(low.bit_length() - 1, t)] += 1
                rem ^= low

        if not hit:
            stats.misses += 1

        if self.mode == "invalidate":
            if is_write:
                # Invalidate every remote copy.
                holders_mask = self._holders.get(line, 0)
                remote = holders_mask & ~bit
                while remote:
                    low = remote & -remote
                    k = low.bit_length() - 1
                    self._stacks[k].pop(line, None)
                    if self._mru_line[k] == line:
                        self._mru_line[k] = None
                    stats.invalidations += 1
                    remote ^= low
                self._holders[line] = bit
                self._writers[line] = bit
                stack[line] = MODIFIED
            else:
                # Downgrade remote Modified copies to Shared.
                if foreign_writers:
                    rem = foreign_writers
                    while rem:
                        low = rem & -rem
                        k = low.bit_length() - 1
                        st = self._stacks[k]
                        if line in st:
                            st[line] = SHARED
                        if self._mru_line[k] == line:
                            self._mru_mod[k] = False
                        stats.downgrades += 1
                        rem ^= low
                    self._writers[line] = writers_mask & ~foreign_writers
                self._holders[line] = self._holders.get(line, 0) | bit
                stack[line] = prev if prev == MODIFIED else SHARED
        else:  # literal
            self._holders[line] = self._holders.get(line, 0) | bit
            if is_write:
                self._writers[line] = writers_mask | bit
                stack[line] = MODIFIED
            else:
                stack[line] = prev if prev == MODIFIED else SHARED

        self._mru_line[t] = line
        self._mru_mod[t] = stack[line] == MODIFIED

        if len(stack) > self.stack_lines:
            evicted, _ = stack.popitem(last=False)
            self._holders[evicted] = self._holders.get(evicted, 0) & ~bit
            self._writers[evicted] = self._writers.get(evicted, 0) & ~bit
            if self._mru_line[t] == evicted:  # capacity-1 corner case
                self._mru_line[t] = None
            stats.evictions += 1

    def _process_private(self, t: int, line: int, is_write: bool) -> None:
        """Transition for a line with no possible φ interaction.

        Precondition (established per block by
        :meth:`_block_private_sets`): no *other* thread currently holds
        or writes ``line``, and none touches it before the private sets
        are recomputed.  Under that precondition FS cases, downgrades
        and invalidations are provably zero, so only the accessing
        thread's LRU stack, the line's own holder/writer bits and the
        miss/eviction counters change.  Valid in both coherence modes
        (they differ only in remote-state handling, and there is no
        remote state to handle).
        """
        stats = self.stats
        stack = self._stacks[t]
        prev = stack.pop(line, None)
        if prev is None:
            stats.misses += 1
        bit = 1 << t
        if is_write:
            stack[line] = MODIFIED
            self._holders[line] = bit
            self._writers[line] = bit
            self._mru_mod[t] = True
        else:
            st = prev if prev == MODIFIED else SHARED
            stack[line] = st
            self._holders[line] = bit
            self._mru_mod[t] = st == MODIFIED
        self._mru_line[t] = line
        if len(stack) > self.stack_lines:
            evicted, _ = stack.popitem(last=False)
            self._holders[evicted] = self._holders.get(evicted, 0) & ~bit
            self._writers[evicted] = self._writers.get(evicted, 0) & ~bit
            if self._mru_line[t] == evicted:  # capacity-1 corner case
                self._mru_line[t] = None
            stats.evictions += 1

    # -- steady-state support ---------------------------------------------------------

    def state_fingerprint(
        self,
        canon: Callable[[int], object] | None = None,
        canon_arrays: Callable[[np.ndarray], tuple] | None = None,
    ) -> bytes:
        """Order-sensitive digest of the complete cache state.

        Covers every thread's LRU stack content, order and M/S states —
        which fully determines future behaviour (the holder/writer
        bitmasks are derivable: thread ``t`` holds a line iff it is in
        ``t``'s stack, and writes it iff that entry is Modified).

        ``canon`` optionally maps raw line ids to canonical,
        shift-invariant keys (see :mod:`repro.model.steadystate`);
        identity when omitted.  ``canon_arrays`` is the vectorized
        variant — a callable mapping an ``int64`` line-id array to a
        tuple of equal-length arrays forming the canonical key — and is
        much faster on large states (digests from the two variants are
        not interchangeable; compare like with like).  Two detectors
        with equal fingerprints evolve identically on canonically-equal
        future access streams.
        """
        h = hashlib.blake2b(digest_size=16)
        update = h.update
        if canon_arrays is not None:
            for stack in self._stacks:
                n = len(stack)
                if n:
                    keys = np.fromiter(stack.keys(), np.int64, count=n)
                    for part in canon_arrays(keys):
                        update(np.ascontiguousarray(part).tobytes())
                    update("".join(stack.values()).encode())
                update(b"|")
            return h.digest()
        for stack in self._stacks:
            for line, st in stack.items():
                key = line if canon is None else canon(line)
                update(repr(key).encode())
                update(b"M" if st == MODIFIED else b"S")
            update(b"|")
        return h.digest()

    def shift_lines(
        self,
        rename: Callable[[int], int] | None = None,
        rename_arrays: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        """Apply an injective line renaming to the whole detector state.

        Detector transitions commute with injective renamings of line
        ids, so the steady-state runner can advance the cache state by a
        whole extrapolated period: shift the state, then resume
        simulating — equivalent to simulating the skipped runs.  Resets
        the MRU memo (a pure optimization; resetting is always safe).

        ``rename`` maps one line id at a time; ``rename_arrays`` is the
        vectorized equivalent over an ``int64`` array (preferred for
        large states).  Exactly one must be provided.
        """
        if (rename is None) == (rename_arrays is None):
            raise ModelError("provide exactly one of rename/rename_arrays")
        new_stacks: list[OrderedDict[int, str]] = []
        holders: dict[int, int] = {}
        writers: dict[int, int] = {}
        for t, stack in enumerate(self._stacks):
            bit = 1 << t
            renamed: OrderedDict[int, str] = OrderedDict()
            if rename_arrays is not None and stack:
                keys = np.fromiter(stack.keys(), np.int64, count=len(stack))
                new_keys = rename_arrays(keys).tolist()
                renamed = OrderedDict(zip(new_keys, stack.values()))
                hg = holders.get
                for new in new_keys:
                    holders[new] = hg(new, 0) | bit
                wg = writers.get
                for new, st in renamed.items():
                    if st == MODIFIED:
                        writers[new] = wg(new, 0) | bit
            elif rename is not None:
                for line, st in stack.items():
                    new = rename(line)
                    renamed[new] = st
                    holders[new] = holders.get(new, 0) | bit
                    if st == MODIFIED:
                        writers[new] = writers.get(new, 0) | bit
            if len(renamed) != len(stack):
                raise ModelError("line renaming must be injective")
            new_stacks.append(renamed)
        self._stacks = new_stacks
        self._holders = holders
        self._writers = writers
        self._mru_line = [None] * self.num_threads
        self._mru_mod = [False] * self.num_threads

    # -- state serialization (segment-parallel simulation) ----------------------------

    def export_state(self) -> dict:
        """Portable snapshot of the complete cache state.

        The stacks alone determine the detector's future behaviour —
        thread ``t`` holds a line iff it is in ``t``'s stack and writes
        it iff that entry is Modified, in *both* coherence modes — so
        the snapshot carries only the per-thread stack contents in
        LRU→MRU order (line ids + Modified flags).  Picklable and
        JSON-friendly; counters are deliberately excluded (a segment
        worker ships its stat deltas separately).
        """
        return {
            "version": 1,
            "stacks": [
                [
                    list(stack.keys()),
                    [st == MODIFIED for st in stack.values()],
                ]
                for stack in self._stacks
            ],
        }

    def import_state(self, state: dict) -> None:
        """Install a snapshot from :meth:`export_state`.

        Rebuilds the holder/writer directory from the stacks and resets
        the MRU memo; the stats accumulator is left untouched.  A
        detector that imports another's exported state continues
        bit-identically to the exporter (same fingerprint, same future
        counters on the same access stream).
        """
        stacks_raw = state["stacks"]
        if len(stacks_raw) != self.num_threads:
            raise ModelError(
                f"state has {len(stacks_raw)} stacks; detector has "
                f"{self.num_threads} threads"
            )
        new_stacks: list[OrderedDict[int, str]] = []
        holders: dict[int, int] = {}
        writers: dict[int, int] = {}
        for t, (lines, mods) in enumerate(stacks_raw):
            if len(lines) > self.stack_lines:
                raise ModelError(
                    f"stack {t} has {len(lines)} lines; capacity is "
                    f"{self.stack_lines}"
                )
            bit = 1 << t
            stack: OrderedDict[int, str] = OrderedDict()
            hg = holders.get
            wg = writers.get
            for line, mod in zip(lines, mods):
                line = int(line)
                stack[line] = MODIFIED if mod else SHARED
                holders[line] = hg(line, 0) | bit
                if mod:
                    writers[line] = wg(line, 0) | bit
            if len(stack) != len(lines):
                raise ModelError(f"stack {t} contains duplicate lines")
            new_stacks.append(stack)
        self._stacks = new_stacks
        self._holders = holders
        self._writers = writers
        self._mru_line = [None] * self.num_threads
        self._mru_mod = [False] * self.num_threads

    # -- inspection -------------------------------------------------------------------

    def cache_state(self, thread: int) -> list[tuple[int, str]]:
        """Thread's cache state, MRU first (for tests/diagnostics)."""
        return list(reversed(self._stacks[thread].items()))

    def holders_of(self, line: int) -> int:
        """Bitmask of threads whose state holds ``line``."""
        return self._holders.get(line, 0)

    def writers_of(self, line: int) -> int:
        """Bitmask of threads whose state holds ``line`` Modified."""
        return self._writers.get(line, 0)
