"""Set-associative private caches with MESI line states.

Each simulated core owns one :class:`PrivateCache` (sized like the
private L2 of the paper's machine).  Unlike the model's
fully-associative LRU approximation, the simulator honours real set
indexing and per-set LRU replacement, which is what makes the
model-vs-simulator comparison a genuine validation of the paper's
fully-associative assumption (see the associativity ablation bench).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.util import is_power_of_two

#: MESI states (Invalid is represented by absence).
M = "M"
E = "E"
S = "S"


class PrivateCache:
    """One core's private cache: ``num_sets`` LRU sets of ``ways`` lines.

    ``ways = 0`` selects a fully-associative cache (a single set).
    Lines are tracked by *line id* (byte address // line size); the
    caller is responsible for coherence actions on returned evictions.
    """

    __slots__ = ("num_sets", "ways", "_sets")

    def __init__(self, num_lines: int, ways: int) -> None:
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        if ways < 0:
            raise ValueError("ways must be >= 0 (0 = fully associative)")
        if ways == 0:
            self.num_sets = 1
            self.ways = num_lines
        else:
            if num_lines % ways:
                raise ValueError(
                    f"num_lines ({num_lines}) must divide by ways ({ways})"
                )
            self.num_sets = num_lines // ways
            self.ways = ways
            if not is_power_of_two(self.num_sets):
                raise ValueError(
                    f"set count must be a power of two, got {self.num_sets}"
                )
        self._sets: list[OrderedDict[int, str]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _set_of(self, line: int) -> OrderedDict[int, str]:
        return self._sets[line & (self.num_sets - 1)]

    def state(self, line: int) -> str | None:
        """The line's MESI state, or ``None`` (Invalid)."""
        return self._set_of(line).get(line)

    def touch(self, line: int, state: str) -> int | None:
        """(Re-)insert ``line`` at MRU with ``state``; return any eviction."""
        s = self._set_of(line)
        s.pop(line, None)
        s[line] = state
        if len(s) > self.ways:
            evicted, _ = s.popitem(last=False)
            return evicted
        return None

    def set_state(self, line: int, state: str) -> None:
        """Change state without affecting LRU order; line must be present."""
        s = self._set_of(line)
        if line not in s:
            raise KeyError(f"line {line} not cached")
        s[line] = state

    def invalidate(self, line: int) -> bool:
        """Drop a line (remote write); True when it was present."""
        return self._set_of(line).pop(line, None) is not None

    def downgrade(self, line: int) -> bool:
        """M/E → S on a remote read; True when the state changed."""
        s = self._set_of(line)
        st = s.get(line)
        if st in (M, E):
            s[line] = S
            return True
        return False

    def occupancy(self) -> int:
        """Total lines currently cached."""
        return sum(len(s) for s in self._sets)

    def lines(self) -> list[tuple[int, str]]:
        """All (line, state) pairs (diagnostics/tests)."""
        out: list[tuple[int, str]] = []
        for s in self._sets:
            out.extend(s.items())
        return out
