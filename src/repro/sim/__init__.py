"""Multicore MESI cache simulator — the "measured" side of Eq. (5).

Stands in for the paper's 48-core AMD testbed: per-core set-associative
private caches, a write-invalidate (MESI) directory, per-access timing
and OpenMP static scheduling.  See DESIGN.md for the substitution
argument.
"""

from repro.sim.cache import E, M, PrivateCache, S
from repro.sim.executor import MulticoreSimulator, SimCounters, SimResult
from repro.sim.timing import AccessCosts
from repro.sim.tracefile import (
    Trace,
    TraceMeta,
    iter_trace_accesses,
    load_trace,
    record_trace,
    replay_fs_detection,
)

__all__ = [
    "Trace",
    "TraceMeta",
    "iter_trace_accesses",
    "load_trace",
    "record_trace",
    "replay_fs_detection",
    "E",
    "M",
    "PrivateCache",
    "S",
    "MulticoreSimulator",
    "SimCounters",
    "SimResult",
    "AccessCosts",
]
