"""The multicore execution substrate — the reproduction's "testbed".

:class:`MulticoreSimulator` executes a parallel loop nest's memory trace
through per-core MESI caches with per-access timing, producing the
``T_fs_measure`` / ``T_nfs_measure`` numbers of the paper's Eq. (5) left
side.  It deliberately shares *inputs* with the analytic side — the same
IR, the same static schedule, the same :class:`MachineConfig` — but none
of its *mechanism*: the model counts FS cases analytically over
fully-associative cache states; the simulator runs every access through
set-associative caches, a MESI directory and a cost table.  Agreement
between the two is therefore evidence the model works, not an identity.

Timing model
------------
Per-thread cycle accumulators advance access by access; the compute cost
of each innermost iteration comes from the shared
:class:`~repro.costmodels.ProcessorModel`, and loop/parallel overheads
from :class:`~repro.costmodels.ParallelModel`.  The loop's wall-clock
cycles are the slowest thread's total plus the runtime overheads —
threads synchronize only at worksharing boundaries, as in OpenMP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.costmodels.parallel import ParallelModel
from repro.costmodels.processor import ProcessorModel
from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import AddressSpace
from repro.ir.validate import validate_nest
from repro.machine import MachineConfig
from repro.model.ownership import OwnershipListGenerator
from repro.obs import get_registry, span
from repro.sim.cache import E, M, PrivateCache, S
from repro.sim.timing import AccessCosts
from repro.util import get_logger

logger = get_logger(__name__)


@dataclass
class SimCounters:
    """Event counts accumulated over a simulated execution."""

    loads: int = 0
    stores: int = 0
    load_hits: int = 0
    store_hits: int = 0
    load_prefetched: int = 0
    load_shared_fills: int = 0
    load_cold: int = 0
    load_remote_modified: int = 0
    store_upgrades: int = 0
    store_miss_clean: int = 0
    store_miss_remote_modified: int = 0
    invalidations: int = 0
    downgrades: int = 0
    evictions: int = 0
    tlb_misses: int = 0

    @property
    def coherence_events(self) -> int:
        """Accesses that found the line dirty in a remote cache —
        the simulator-side analogue of the model's FS cases."""
        return self.load_remote_modified + self.store_miss_remote_modified

    @property
    def accesses(self) -> int:
        return self.loads + self.stores


@dataclass
class SimResult:
    """Outcome of one simulated execution of a parallel nest."""

    nest_name: str
    num_threads: int
    chunk: int
    cycles: float
    per_thread_cycles: np.ndarray
    compute_cycles_per_iter: float
    steps: int
    counters: SimCounters
    elapsed_seconds: float
    freq_ghz: float = 2.2

    @property
    def seconds(self) -> float:
        """Simulated wall-clock time of the loop."""
        return self.cycles / (self.freq_ghz * 1e9)

    @property
    def memory_cycles(self) -> float:
        """Cycles spent in the memory system by the slowest thread."""
        return float(self.per_thread_cycles.max()) if len(self.per_thread_cycles) else 0.0


class MulticoreSimulator:
    """Cycle-approximate multicore cache/coherence simulator.

    Parameters
    ----------
    machine:
        Machine description (cache geometry, penalties, overheads).
    block_steps:
        Lockstep steps fetched per trace block.
    fully_associative:
        Force fully-associative private caches (for the associativity
        ablation; default uses the machine's set-associative geometry).
    """

    def __init__(
        self,
        machine: MachineConfig,
        block_steps: int = 4096,
        fully_associative: bool = False,
        prefetcher: bool = True,
        thread_placement: str = "contiguous",
    ) -> None:
        self.machine = machine
        self.block_steps = block_steps
        self.fully_associative = fully_associative
        #: Thread-to-socket pinning policy; coherence penalties between
        #: threads on different sockets scale by
        #: ``machine.coherence.cross_socket_factor`` (1.0 by default).
        self.thread_placement = thread_placement
        #: Per-(thread, reference) constant-stride prefetcher.  Modern
        #: cores hide constant-stride load streams almost entirely; a
        #: coherence miss (dirty remote copy) cannot be hidden because
        #: any prefetched copy is invalidated before use — which is
        #: precisely why false sharing survives prefetching on real
        #: hardware while plain streaming misses do not.
        self.prefetcher = prefetcher
        self.costs = AccessCosts.from_machine(machine)
        self._processor = ProcessorModel(machine)
        self._parallel = ParallelModel(machine)

    def run(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        chunk: int | None = None,
        space: AddressSpace | None = None,
        max_steps: int | None = None,
    ) -> SimResult:
        """Simulate the nest and return timing plus event counts."""
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        if chunk is not None:
            nest = nest.with_chunk(chunk)
        validate_nest(nest)

        with span("sim.run", kernel=nest.name, threads=num_threads) as sp:
            result = self._run(nest, num_threads, space, max_steps)
            sp.set(
                chunk=result.chunk,
                accesses=result.counters.accesses,
                coherence_events=result.counters.coherence_events,
            )
        return result

    def _run(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        space: AddressSpace | None,
        max_steps: int | None,
    ) -> SimResult:
        t0 = time.perf_counter()
        gen = OwnershipListGenerator(
            nest,
            num_threads,
            line_size=self.machine.line_size,
            space=space,
            block_steps=self.block_steps,
        )
        compute = self._processor.cycles_per_iter(nest)
        loop_oh = self._parallel.loop_overhead_per_iter(nest)
        per_step_cycles = compute + loop_oh

        from repro.machine.topology import pair_penalty_factory

        self._pair_penalty = pair_penalty_factory(
            num_threads,
            self.machine.cores_per_socket,
            self.thread_placement,
            self.machine.coherence.cross_socket_factor,
        )
        l2 = self.machine.l2
        ways = 0 if self.fully_associative else l2.associativity
        caches = [PrivateCache(l2.num_lines, ways) for _ in range(num_threads)]
        # Per-thread TLBs at page granularity (the paper models the TLB
        # as another cache level; the simulator gives each core one).
        lines_per_page = self.machine.page_size // self.machine.line_size
        tlbs = [
            PrivateCache(self.machine.tlb_entries, 0) for _ in range(num_threads)
        ]
        tlb_miss_cycles = self.machine.tlb_miss_cycles
        holders: dict[int, int] = {}
        writers: dict[int, int] = {}
        l3_seen: set[int] = set()
        mru_line: list[int | None] = [None] * num_threads
        mru_mod: list[bool] = [False] * num_threads
        cycles = [0.0] * num_threads
        c = self.costs
        counters = SimCounters()
        total_steps = 0

        writes = tuple(bool(w) for w in gen.write_mask)
        n_refs = len(writes)
        # Stride-prefetcher state per (thread, reference).
        use_pf = self.prefetcher
        pf_last = [[-1] * n_refs for _ in range(num_threads)]
        pf_delta = [[0] * n_refs for _ in range(num_threads)]

        steps_per_run = max(gen.iteration_space.steps_per_chunk_run, 1)
        progress = get_registry().gauge(
            "sim_progress_chunk_runs",
            "chunk runs completed by the in-flight simulation",
        ).labels(kernel=nest.name, threads=num_threads)
        for block in gen.blocks(max_steps):
            block_span = span("sim.block", start_step=block.start_step)
            block_span.__enter__()
            rows = [mat.tolist() for mat in block.lines]
            lengths = [len(r) for r in rows]
            n_steps = max(lengths, default=0)
            total_steps += n_steps
            for s in range(n_steps):
                for t in range(num_threads):
                    if s >= lengths[t]:
                        continue
                    row = rows[t][s]
                    cost = per_step_cycles
                    pl = pf_last[t]
                    pd = pf_delta[t]
                    for k in range(n_refs):
                        line = row[k]
                        w = writes[k]
                        # Prefetch prediction (evaluate before updating).
                        # Zero deltas (sub-line progress) do not disturb a
                        # learned line stride — real stride prefetchers
                        # track byte strides below line granularity.
                        delta = line - pl[k]
                        if delta:
                            predicted = use_pf and delta == pd[k]
                            pd[k] = delta
                        else:
                            predicted = False
                        pl[k] = line
                        # MRU fast path: re-touch with sufficient state.
                        if line == mru_line[t] and (mru_mod[t] or not w):
                            if w:
                                cost += c.store_hit
                                counters.stores += 1
                                counters.store_hits += 1
                            else:
                                cost += c.load_hit
                                counters.loads += 1
                                counters.load_hits += 1
                            continue
                        # TLB lookup (page granularity, per thread); the
                        # MRU fast path above implies a same-page hit.
                        page = line // lines_per_page
                        if tlbs[t].state(page) is None:
                            counters.tlb_misses += 1
                            cost += tlb_miss_cycles
                        tlbs[t].touch(page, S)
                        cost += self._access(
                            t, line, w, caches, holders, writers, l3_seen,
                            mru_line, mru_mod, counters, predicted,
                        )
                    cycles[t] += cost
            # block ends; state persists across blocks
            block_span.set(steps=n_steps)
            block_span.__exit__(None, None, None)
            progress.set(total_steps // steps_per_run)
            logger.debug(
                "sim %s: %d chunk runs done (%d steps)",
                nest.name, total_steps // steps_per_run, total_steps,
            )

        par_oh = self.machine.overheads
        trips = nest.trip_counts()
        d = nest.parallel_depth()
        outer_runs = 1
        for tr in trips[:d]:
            outer_runs *= max(tr, 1)
        est = self._parallel.estimate(nest, num_threads)
        wall = (
            max(cycles)
            + par_oh.parallel_startup_cycles
            + est.dispatch_cycles / num_threads
            + par_oh.barrier_cycles_per_thread * outer_runs
        )
        elapsed = time.perf_counter() - t0
        registry = get_registry()
        if elapsed > 0:
            registry.gauge(
                "sim_accesses_per_sec",
                "simulated accesses processed per second by the last run",
            ).labels(kernel=nest.name, threads=num_threads).set(
                counters.accesses / elapsed
            )
        registry.counter(
            "sim_coherence_events",
            "accesses that found the line dirty in a remote cache",
        ).labels(kernel=nest.name, threads=num_threads).inc(
            counters.coherence_events
        )
        registry.histogram(
            "sim_run_seconds", "wall time of MulticoreSimulator.run"
        ).labels(kernel=nest.name).observe(elapsed)
        result = SimResult(
            nest_name=nest.name,
            num_threads=num_threads,
            chunk=gen.iteration_space.chunk,
            cycles=wall,
            per_thread_cycles=np.asarray(cycles),
            compute_cycles_per_iter=compute,
            steps=total_steps,
            counters=counters,
            elapsed_seconds=elapsed,
            freq_ghz=self.machine.freq_ghz,
        )
        logger.debug(
            "sim %s T=%d chunk=%d: %.0f cycles, %d coherence events (%.3fs)",
            nest.name, num_threads, result.chunk, wall,
            counters.coherence_events, elapsed,
        )
        return result

    def _access(
        self,
        t: int,
        line: int,
        w: bool,
        caches: list[PrivateCache],
        holders: dict[int, int],
        writers: dict[int, int],
        l3_seen: set[int],
        mru_line: list[int | None],
        mru_mod: list[bool],
        counters: SimCounters,
        predicted: bool = False,
    ) -> int:
        """Full MESI transition for one access; returns its cycle cost."""
        bit = 1 << t
        cache = caches[t]
        st = cache.state(line)

        if w:
            counters.stores += 1
        else:
            counters.loads += 1

        if st is not None:  # ---- hit ----
            if not w:
                counters.load_hits += 1
                cache.touch(line, st)
                mru_line[t] = line
                mru_mod[t] = st == M
                return self.costs.load_hit
            if st in (M, E):
                counters.store_hits += 1
                if st == E:
                    writers[line] = writers.get(line, 0) | bit
                cache.touch(line, M)
                mru_line[t] = line
                mru_mod[t] = True
                return self.costs.store_hit
            # S: upgrade — invalidate the other sharers.
            remote = holders.get(line, 0) & ~bit
            self._invalidate_remote(line, remote, caches, mru_line, counters)
            holders[line] = bit
            writers[line] = bit
            cache.touch(line, M)
            mru_line[t] = line
            mru_mod[t] = True
            counters.store_upgrades += 1
            return self.costs.store_upgrade

        # ---- miss ----
        foreign_writers = writers.get(line, 0) & ~bit
        foreign_holders = holders.get(line, 0) & ~bit
        evicted: int | None
        if not w:
            if foreign_writers:
                writer = foreign_writers.bit_length() - 1
                cost = int(
                    self.costs.load_remote_modified * self._pair_penalty(t, writer)
                )
                counters.load_remote_modified += 1
                self._downgrade_remote(
                    line, foreign_writers, caches, mru_line, mru_mod, counters
                )
                writers[line] = 0
                state = S
            elif foreign_holders:
                if predicted:
                    cost = self.costs.load_prefetched
                    counters.load_prefetched += 1
                else:
                    cost = self.costs.load_shared_fill
                    counters.load_shared_fills += 1
                # An exclusive-clean holder loses E.
                self._downgrade_remote(
                    line, foreign_holders, caches, mru_line, mru_mod, counters,
                    count=False,
                )
                state = S
            else:
                if predicted:
                    cost = self.costs.load_prefetched
                    counters.load_prefetched += 1
                elif line in l3_seen:
                    cost = self.costs.load_shared_fill
                    counters.load_shared_fills += 1
                else:
                    cost = self.costs.load_cold
                    counters.load_cold += 1
                state = E
            holders[line] = holders.get(line, 0) | bit
            evicted = cache.touch(line, state)
            mru_line[t] = line
            mru_mod[t] = False
        else:
            if foreign_writers:
                writer = foreign_writers.bit_length() - 1
                cost = int(
                    self.costs.store_miss_remote_modified
                    * self._pair_penalty(t, writer)
                )
                counters.store_miss_remote_modified += 1
            else:
                cost = self.costs.store_miss_clean
                counters.store_miss_clean += 1
            remote = foreign_writers | foreign_holders
            self._invalidate_remote(line, remote, caches, mru_line, counters)
            holders[line] = bit
            writers[line] = bit
            evicted = cache.touch(line, M)
            mru_line[t] = line
            mru_mod[t] = True
        l3_seen.add(line)

        if evicted is not None:
            holders[evicted] = holders.get(evicted, 0) & ~bit
            writers[evicted] = writers.get(evicted, 0) & ~bit
            if mru_line[t] == evicted:
                mru_line[t] = None
            counters.evictions += 1
        return cost

    def _invalidate_remote(
        self, line, mask, caches, mru_line, counters
    ) -> None:
        while mask:
            low = mask & -mask
            k = low.bit_length() - 1
            if caches[k].invalidate(line):
                counters.invalidations += 1
            if mru_line[k] == line:
                mru_line[k] = None
            mask ^= low

    def _downgrade_remote(
        self, line, mask, caches, mru_line, mru_mod, counters, count: bool = True
    ) -> None:
        while mask:
            low = mask & -mask
            k = low.bit_length() - 1
            if caches[k].downgrade(line) and count:
                counters.downgrades += 1
            if mru_line[k] == line:
                mru_mod[k] = False
            mask ^= low
