"""Per-access timing for the multicore simulator.

The simulator charges each memory access according to where the MESI
protocol finds the line.  Loads stall the pipeline, so they pay full
fill latencies; stores retire through the store buffer, so their misses
pay only the coherence traffic they generate plus a small buffered-fill
cost — the asymmetry that makes write-heavy false sharing (heat) much
cheaper per case than read-modify-write false sharing (DFT), as in the
paper's measurements.

The table derives from :class:`~repro.machine.MachineConfig`, so the
simulator and the analytic models price the same machine consistently:
the model's ``FalseSharing_c`` penalties (``remote_fetch_cycles`` for
read cases, ``invalidate_cycles`` for write cases) are exactly the
simulator's marginal cost of a coherence event over the non-FS path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine import MachineConfig


@dataclass(frozen=True)
class AccessCosts:
    """Cycle cost of each access outcome class."""

    load_hit: int
    load_prefetched: int       # stride-predicted fill already in flight
    load_shared_fill: int      # clean line from L3 / another sharer
    load_cold: int             # first touch anywhere: DRAM
    load_remote_modified: int  # dirty cache-to-cache transfer (read FS)
    store_hit: int             # own copy in M/E
    store_upgrade: int         # own copy in S: invalidate sharers
    store_miss_clean: int      # buffered RFO, no remote dirty copy
    store_miss_remote_modified: int  # invalidate a dirty remote copy (write FS)

    @classmethod
    def from_machine(cls, machine: MachineConfig) -> "AccessCosts":
        coh = machine.coherence
        return cls(
            load_hit=machine.l1.latency_cycles,
            load_prefetched=machine.l1.latency_cycles + 2,
            load_shared_fill=machine.l3.latency_cycles,
            load_cold=machine.mem_latency_cycles,
            load_remote_modified=coh.remote_fetch_cycles,
            store_hit=1,
            store_upgrade=coh.upgrade_cycles,
            store_miss_clean=machine.l3.latency_cycles // 4,
            # Buffered fill plus the invalidation round: the *marginal*
            # cost over a clean store miss is exactly invalidate_cycles,
            # the penalty the model charges per write-FS case.
            store_miss_remote_modified=machine.l3.latency_cycles // 4
            + coh.invalidate_cycles,
        )
