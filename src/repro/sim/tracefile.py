"""Memory-trace recording and replay.

The runtime-detection literature the paper compares against works in
two phases: *capture* every memory access of an execution, then feed
the trace to an offline cache simulator (Section V: "compiler
instruments the binary code with tracing routines, and a tracing tool
then captures the memory accesses... The tracing file is fed to a
simulation tool").  This module provides that infrastructure for the
reproduction's executions:

* :func:`record_trace` — run a nest's static schedule and persist the
  per-thread byte-address streams (compressed ``.npz``: NumPy arrays
  plus a JSON metadata blob);
* :func:`load_trace` — read it back;
* :func:`iter_trace_accesses` — replay in the canonical lockstep
  interleaving as (thread, address, is_write) triples.

A trace decouples capture from analysis: the same file can drive the
FS detector, the runtime baseline, or external tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import AddressSpace
from repro.ir.validate import validate_nest
from repro.machine import MachineConfig
from repro.model.ownership import OwnershipListGenerator

#: Format version written into every trace file.
TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceMeta:
    """Metadata stored alongside the address streams."""

    nest_name: str
    num_threads: int
    chunk: int
    line_size: int
    n_refs: int
    write_mask: tuple[bool, ...]
    steps_per_thread: tuple[int, ...]
    arrays: tuple[tuple[str, int, int], ...] = field(default=())
    version: int = TRACE_FORMAT_VERSION

    @property
    def total_accesses(self) -> int:
        return sum(self.steps_per_thread) * self.n_refs


@dataclass(frozen=True)
class Trace:
    """A loaded trace: metadata plus per-thread address matrices."""

    meta: TraceMeta
    addresses: tuple[np.ndarray, ...]  # per thread: [steps_t, n_refs]

    def lines(self, thread: int) -> np.ndarray:
        """Line ids for one thread's stream."""
        return self.addresses[thread] // self.meta.line_size


def record_trace(
    nest: ParallelLoopNest,
    num_threads: int,
    machine: MachineConfig,
    path: str | Path,
    chunk: int | None = None,
    max_steps: int | None = None,
    space: AddressSpace | None = None,
) -> TraceMeta:
    """Capture a nest execution's address streams to ``path`` (.npz)."""
    if num_threads <= 0:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    if chunk is not None:
        nest = nest.with_chunk(chunk)
    validate_nest(nest)
    gen = OwnershipListGenerator(
        nest, num_threads, line_size=machine.line_size, space=space
    )
    per_thread: list[list[np.ndarray]] = [[] for _ in range(num_threads)]
    for start, envs in gen.enum.blocks(max_steps):
        for t, env in enumerate(envs):
            block = gen.addresses_for_env(env)
            if len(block):
                per_thread[t].append(block)

    stacked = [
        np.vstack(blocks) if blocks else np.empty((0, len(gen.refs)), np.int64)
        for blocks in per_thread
    ]
    meta = TraceMeta(
        nest_name=nest.name,
        num_threads=num_threads,
        chunk=gen.iteration_space.chunk,
        line_size=machine.line_size,
        n_refs=len(gen.refs),
        write_mask=tuple(bool(w) for w in gen.write_mask),
        steps_per_thread=tuple(len(m) for m in stacked),
        arrays=tuple(
            (a.name, gen.space.base(a.name), a.size_bytes())
            for a in gen.space.arrays()
        ),
    )
    payload = {f"thread_{t}": m for t, m in enumerate(stacked)}
    payload["meta_json"] = np.frombuffer(
        json.dumps(_meta_to_dict(meta)).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **payload)
    return meta


def _meta_to_dict(meta: TraceMeta) -> dict:
    return {
        "nest_name": meta.nest_name,
        "num_threads": meta.num_threads,
        "chunk": meta.chunk,
        "line_size": meta.line_size,
        "n_refs": meta.n_refs,
        "write_mask": list(meta.write_mask),
        "steps_per_thread": list(meta.steps_per_thread),
        "arrays": [list(a) for a in meta.arrays],
        "version": meta.version,
    }


def load_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`record_trace`."""
    with np.load(Path(path)) as data:
        raw = bytes(data["meta_json"].tobytes())
        blob = json.loads(raw.decode("utf-8"))
        if blob.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace version {blob.get('version')!r} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        meta = TraceMeta(
            nest_name=blob["nest_name"],
            num_threads=blob["num_threads"],
            chunk=blob["chunk"],
            line_size=blob["line_size"],
            n_refs=blob["n_refs"],
            write_mask=tuple(bool(w) for w in blob["write_mask"]),
            steps_per_thread=tuple(blob["steps_per_thread"]),
            arrays=tuple(tuple(a) for a in blob["arrays"]),
        )
        addresses = tuple(
            data[f"thread_{t}"] for t in range(meta.num_threads)
        )
    return Trace(meta=meta, addresses=addresses)


def iter_trace_accesses(trace: Trace) -> Iterator[tuple[int, int, bool]]:
    """Replay a trace in the canonical lockstep interleaving.

    Yields ``(thread, byte_address, is_write)`` — step-major, threads in
    id order within a step, references in program order per thread.
    """
    meta = trace.meta
    rows = [m.tolist() for m in trace.addresses]
    n_steps = max(meta.steps_per_thread, default=0)
    for s in range(n_steps):
        for t in range(meta.num_threads):
            if s >= meta.steps_per_thread[t]:
                continue
            row = rows[t][s]
            for k in range(meta.n_refs):
                yield t, row[k], meta.write_mask[k]


def replay_fs_detection(trace: Trace, stack_lines: int, mode: str = "invalidate"):
    """Run the φ/mask detector over a recorded trace.

    Returns the detector (its ``stats`` carry the counts) — equivalence
    with a direct model run is a test-suite invariant.
    """
    from repro.model.detector import FSDetector

    detector = FSDetector(trace.meta.num_threads, stack_lines, mode=mode)
    line_size = trace.meta.line_size
    for t, addr, w in iter_trace_accesses(trace):
        detector.access(t, addr // line_size, w)
    return detector
