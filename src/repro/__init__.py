"""repro — compile-time detection of false sharing via loop cost modeling.

A production-quality reproduction of Tolubaeva, Yan & Chapman,
*Compile-Time Detection of False Sharing via Loop Cost Modeling*
(IPPS 2012).  The package contains:

* :mod:`repro.model` — the paper's contribution: the compile-time false
  sharing (FS) cost model, the stack-distance cache-state machinery and
  the linear-regression FS predictor;
* :mod:`repro.frontend` / :mod:`repro.ir` — a pycparser-based C/OpenMP
  frontend and a high-level loop IR (the Open64/WHIRL stand-in);
* :mod:`repro.costmodels` — Open64-style processor/cache/TLB/parallel
  loop cost models (Eq. 1 of the paper);
* :mod:`repro.sim` — a multicore MESI cache simulator standing in for
  the paper's 48-core testbed ("measured" numbers);
* :mod:`repro.kernels` — the heat diffusion, DFT and Phoenix linear
  regression kernels used in the evaluation;
* :mod:`repro.transform` — model-guided mitigation (chunk-size
  optimizer, padding advisor);
* :mod:`repro.analysis` — drivers regenerating every table and figure.

Top-level names are loaded lazily (PEP 562) so ``import repro`` stays
cheap and submodules can be used independently.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: attribute name -> (module, attribute) for lazy loading
_LAZY = {
    "MachineConfig": ("repro.machine", "MachineConfig"),
    "paper_machine": ("repro.machine", "paper_machine"),
    "tiny_machine": ("repro.machine", "tiny_machine"),
    "FalseSharingModel": ("repro.model", "FalseSharingModel"),
    "FalseSharingPredictor": ("repro.model", "FalseSharingPredictor"),
    "FSModelResult": ("repro.model", "FSModelResult"),
    "fs_overhead_percent": ("repro.model", "fs_overhead_percent"),
    "TotalCostModel": ("repro.costmodels", "TotalCostModel"),
    "MulticoreSimulator": ("repro.sim", "MulticoreSimulator"),
    "SimResult": ("repro.sim", "SimResult"),
    "parse_c_source": ("repro.frontend", "parse_c_source"),
    "ParallelLoopNest": ("repro.ir", "ParallelLoopNest"),
    "Schedule": ("repro.ir", "Schedule"),
}

__all__ = ["__version__", *sorted(_LAZY)]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.costmodels import TotalCostModel
    from repro.frontend import parse_c_source
    from repro.ir import ParallelLoopNest, Schedule
    from repro.machine import MachineConfig, paper_machine, tiny_machine
    from repro.model import (
        FalseSharingModel,
        FalseSharingPredictor,
        FSModelResult,
        fs_overhead_percent,
    )
    from repro.sim import MulticoreSimulator, SimResult
