"""Command-line interface: ``repro-fs`` / ``python -m repro``.

Subcommands
-----------
``analyze``
    Parse a C/OpenMP file, run the FS model on every ``parallel for``
    nest and print an FS report (cases, victims, Eq. (1) share).
``predict``
    Same, but with the fast linear-regression predictor.
``optimize``
    Recommend a schedule chunk size per nest.
``diagnose``
    Full diagnosis: victims, hot lines, the inter-thread conflict matrix.
``sweep``
    What-if landscape over (threads × chunk).
``trace``
    Record the execution's memory trace to a compressed ``.npz``.
``experiments``
    Regenerate the paper's tables and figures (``--scale tiny`` for a
    quick look, ``full`` for the EXPERIMENTS.md numbers).
``profile``
    Run the full analysis with span tracing forced on; write a Chrome
    trace (Perfetto / ``chrome://tracing``) and a metrics dump, and
    print a per-stage timing summary.
``cache``
    Inspect (``stats``) or empty (``clear``) the batch engine's
    content-addressed result store.
``serve``
    Run the analysis-as-a-service daemon: HTTP/JSON job API with
    NDJSON result streaming, multi-tenant quotas, a Prometheus
    ``/metrics`` endpoint and a graceful SIGTERM drain
    (docs/SERVICE.md).
``doctor``
    Self-check the resilience machinery (error taxonomy, budget
    guards, degradation ladder, fault injection, store corruption
    tolerance) and the service plumbing (socket bind, tenants parsing,
    store writability, queue-state round-trip); exit 0 iff every check
    passes.

Every analysis subcommand also accepts ``--profile TRACE.json`` /
``--metrics-out METRICS.json`` (or the ``REPRO_TRACE`` /
``REPRO_METRICS`` environment variables) — see docs/OBSERVABILITY.md —
plus the batch-engine flags ``--jobs N`` (worker processes; sweep and
experiments fan out, and ``--jobs N`` output is byte-identical to
``--jobs 1``), ``--shards N`` (partition the batch across N
independent pools — ``--jobs`` becomes workers *per shard*),
``--mem-cache-mb MB`` (in-memory result tier in front of the store;
0 disables) and ``--no-cache`` (skip both cache tiers).  ``sweep``
additionally takes ``--since-manifest [MANIFEST.json]`` for
incremental re-analysis: only kernels whose nest digests moved since
the recorded manifest are recomputed — see docs/ENGINE.md.

Resilience flags (docs/RESILIENCE.md): ``--deadline SECONDS`` /
``--max-iters N`` build a :class:`repro.resilience.Budget` for every
analysis (sweeps degrade gracefully down the exact → regression →
analytic ladder instead of dying); ``--keep-going`` (sweep default)
isolates per-file and per-point failures into structured reports while
``--fail-fast`` aborts on the first one.  Structured errors print as
one-line diagnostics with stable exit codes (2 usage, 3 frontend,
4 model/resource, 5 engine); set ``REPRO_LOG=debug`` for the raw
traceback.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.costmodels import TotalCostModel
from repro.frontend import parse_c_source
from repro.ir import analyze_dependences
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor
from repro.resilience import Budget, FailurePolicy, FailureReport, ReproError
from repro.transform import ChunkSizeOptimizer


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("file", nargs="+", metavar="FILE",
                   help="C source file(s) with OpenMP parallel loops")
    p.add_argument("--threads", "-t", type=int, default=None,
                   help="thread count to analyze (default: the pragma's "
                        "num_threads clause, else 8)")
    p.add_argument("--chunk", "-c", type=int, default=None,
                   help="override the schedule chunk size")
    p.add_argument("--cores", type=int, default=48,
                   help="machine core count (default 48, the paper's box)")
    p.add_argument("--mode", choices=("invalidate", "literal"),
                   default="invalidate", help="FS counting semantics")
    p.add_argument("-D", "--define", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="predefine an integer macro (repeatable)")
    p.add_argument("--profile", metavar="TRACE.json", default=None,
                   help="record spans and write a Chrome trace-event "
                        "JSON (open in Perfetto / chrome://tracing)")
    p.add_argument("--metrics-out", metavar="METRICS.json", default=None,
                   help="write the metrics registry at exit; format by "
                        "extension: .json dump, .csv table, or .prom "
                        "Prometheus text exposition")
    _add_model_flags(p)
    _add_engine_flags(p)
    _add_resilience_flags(p)


def _add_model_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--engine", choices=("auto", "jit", "fast", "reference"),
                   default="auto", dest="detector_engine",
                   help="FS detector engine (default auto: JIT tier when "
                        "numba is installed, else the vectorized fast path, "
                        "with scalar fallback for tiny traces; all engines "
                        "produce bit-identical results)")
    p.add_argument("--no-steady-state", action="store_true",
                   help="disable the exact steady-state early exit "
                        "(slower on large grids; identical results)")
    p.add_argument("--sim-jobs", type=int, default=1, metavar="N",
                   help="segment-parallel simulation workers per analysis "
                        "(default 1 = serial; results are bit-identical "
                        "for any worker count)")


def _model_kwargs(args: argparse.Namespace) -> dict:
    """Engine knobs shared by every model-building command."""
    return {
        "engine": getattr(args, "detector_engine", "auto"),
        "steady_state": not getattr(args, "no_steady_state", False),
        "sim_jobs": getattr(args, "sim_jobs", 1),
    }


def _add_engine_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for batch evaluation (default 1 "
                        "= serial; per shard when --shards > 1; results "
                        "are identical either way)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="partition the batch by job key across N "
                        "independent worker pools (default 1; results "
                        "are byte-identical for any shard count)")
    p.add_argument("--mem-cache-mb", type=int, default=64, metavar="MB",
                   help="in-memory result-cache budget in MiB, consulted "
                        "before the disk store (0 disables; default 64)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the result cache — both the memory tier and "
                        "the on-disk store ($REPRO_CACHE_DIR or "
                        "~/.cache/repro)")


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget per analysis; over-deadline "
                        "work degrades (sweep) or aborts with REPRO-R002")
    p.add_argument("--max-iters", type=int, default=None, metavar="N",
                   help="cap on lockstep iterations the exact detector may "
                        "evaluate; sweeps degrade down the "
                        "exact→regression→analytic ladder instead of dying")
    g = p.add_mutually_exclusive_group()
    g.add_argument("--keep-going", dest="keep_going", action="store_true",
                   default=True,
                   help="isolate per-file/per-point failures into "
                        "structured reports and finish the batch (default "
                        "for sweep/experiments)")
    g.add_argument("--fail-fast", dest="keep_going", action="store_false",
                   help="abort on the first failure with its structured "
                        "error code")
    p.add_argument("--max-failure-rate", type=float, default=1.0,
                   metavar="FRACTION",
                   help="circuit breaker: abort a keep-going batch once "
                        "this fraction of points has failed (default 1.0 "
                        "= disabled)")


def _budget_from(args: argparse.Namespace) -> Budget | None:
    deadline = getattr(args, "deadline", None)
    max_iters = getattr(args, "max_iters", None)
    if deadline is None and max_iters is None:
        return None
    return Budget(deadline_s=deadline, max_steps=max_iters)


def _policy_from(args: argparse.Namespace) -> FailurePolicy:
    return FailurePolicy(
        keep_going=getattr(args, "keep_going", True),
        max_failure_rate=getattr(args, "max_failure_rate", 1.0),
    )


def _print_failures(policy: FailurePolicy) -> None:
    if not policy.failures:
        return
    print(
        f"\n{len(policy.failures)} of {policy.evaluated} evaluations "
        "failed (isolated):",
        file=sys.stderr,
    )
    for failure in policy.failures:
        print(f"  {failure.one_line()}", file=sys.stderr)


def _engine_from(args: argparse.Namespace):
    """Build the engine the ``--jobs/--shards/--mem-cache-mb`` flags ask
    for (a plain :class:`repro.engine.Engine`, or a
    :class:`repro.engine.ShardedEngine` when ``--shards > 1``)."""
    from repro.engine import make_engine

    return make_engine(
        jobs=getattr(args, "jobs", 1),
        shards=getattr(args, "shards", 1),
        use_cache=not getattr(args, "no_cache", False),
        mem_cache_mb=getattr(args, "mem_cache_mb", 64),
    )


def _macros(defines: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for d in defines:
        name, _, value = d.partition("=")
        if not value.lstrip("-").isdigit():
            raise SystemExit(f"-D {d!r}: value must be an integer")
        out[name] = int(value)
    return out


def _load_kernel_files(
    args: argparse.Namespace, policy: FailurePolicy | None = None
):
    """Parse every input file into ``(path, kernel)`` pairs.

    The path rides along so incremental consumers (``sweep
    --since-manifest``) can key the digest manifest per source file.
    Without a ``policy`` any frontend failure propagates (strict, the
    single-file commands).  With a keep-going policy, a file that fails
    to parse becomes one isolated :class:`FailureReport` and the other
    files still contribute their kernels — a sweep grid with one
    unparsable kernel produces the rest of the landscape plus a
    structured failure, not a dead run.
    """
    pairs = []
    for path in args.file:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise SystemExit(f"{path}: {exc.strerror or exc}") from exc
        try:
            pairs.extend(
                (path, kernel)
                for kernel in parse_c_source(
                    source, extra_macros=_macros(args.define)
                )
            )
        except ReproError as exc:
            if policy is None:
                raise
            policy.record_failure(
                FailureReport.from_exception(
                    exc, label=path, kind="frontend", point={"file": path}
                ),
                cause=exc,
            )
    if not pairs and not (policy is not None and policy.failures):
        names = ", ".join(args.file)
        raise SystemExit(f"{names}: no OpenMP parallel for loops found")
    return pairs


def _load_kernels(
    args: argparse.Namespace, policy: FailurePolicy | None = None
):
    """Parse every input file into kernels (paths dropped)."""
    return [kernel for _, kernel in _load_kernel_files(args, policy=policy)]


def _threads_for(args: argparse.Namespace, kernel) -> int:
    """CLI flag first, then the pragma's num_threads clause, then 8."""
    if getattr(args, "threads", None):
        return args.threads
    if kernel.pragma.num_threads:
        return kernel.pragma.num_threads
    return 8


def cmd_analyze(args: argparse.Namespace) -> int:
    machine = paper_machine(num_cores=args.cores)
    model = FalseSharingModel(machine, mode=args.mode, **_model_kwargs(args))
    total_model = TotalCostModel(machine)
    budget = _budget_from(args)
    for k in _load_kernels(args):
        threads = _threads_for(args, k)
        deps = analyze_dependences(k.nest)
        if not deps.parallelizable(k.nest.parallel_var):
            print(f"kernel {k.name}: WARNING — the parallel loop "
                  f"{k.nest.parallel_var!r} carries a data dependence:")
            for d in deps.carried_by(k.nest.parallel_var):
                print(f"  {d}")
        r = model.analyze(k.nest, threads, chunk=args.chunk, budget=budget)
        fs_cycles = r.fs_cycles(machine)
        base = total_model.total_cycles(k.nest, threads, fs_cases=0.0)
        share = 100.0 * fs_cycles / (base + fs_cycles) if fs_cycles else 0.0
        print(f"kernel {k.name} ({k.nest.schedule}, {threads} threads)")
        print(f"  false sharing cases : {r.fs_cases:,} "
              f"({r.fs_read_cases:,} read / {r.fs_write_cases:,} write)")
        print(f"  est. FS time share  : {share:.1f}% of loop execution")
        for victim in r.victim_arrays()[:5]:
            print(f"  victim              : {victim.name} "
                  f"({victim.fs_cases:,} cases on {victim.lines:,} lines)")
        detail = f"engine={r.engine}"
        if r.runs_extrapolated:
            detail += (f", {r.runs_extrapolated:,}/{r.total_chunk_runs:,} "
                       f"chunk runs extrapolated exactly")
        print(f"  evaluated           : {r.steps_evaluated:,} iterations "
              f"in {r.elapsed_seconds:.2f}s ({detail})")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    machine = paper_machine(num_cores=args.cores)
    model = FalseSharingModel(machine, mode=args.mode, **_model_kwargs(args))
    predictor = FalseSharingPredictor(model, n_runs=args.runs)
    budget = _budget_from(args)
    for k in _load_kernels(args):
        p = predictor.predict(k.nest, _threads_for(args, k), chunk=args.chunk,
                              budget=budget)
        print(f"kernel {k.name}: predicted {p.predicted_fs_cases:,.0f} FS cases "
              f"from {p.sampled_runs}/{p.total_runs} chunk runs "
              f"(fit R^2={p.fit.r2:.4f})")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    machine = paper_machine(num_cores=args.cores)
    optimizer = ChunkSizeOptimizer(machine, predictor_runs=args.runs)
    for k in _load_kernels(args):
        rec = optimizer.recommend(k.nest, _threads_for(args, k))
        print(f"kernel {k.name}: recommended schedule(static,{rec.best_chunk})")
        for s in rec.scores:
            marker = " <-- best" if s.chunk == rec.best_chunk else ""
            print(f"  chunk {s.chunk:4d}: {s.total_cycles:14,.0f} cycles "
                  f"({s.fs_cases:,.0f} FS cases){marker}")
        print(f"  predicted improvement vs chunk=1: "
              f"{rec.improvement_percent(1):.1f}%")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis import ExperimentSuite

    kwargs = _model_kwargs(args)
    suite = ExperimentSuite(scale=args.scale,
                            detector_engine=kwargs["engine"],
                            steady_state=kwargs["steady_state"],
                            sim_jobs=kwargs["sim_jobs"])
    policy = _policy_from(args)
    results = list(suite.run_all(engine=_engine_from(args), policy=policy))
    for res in results:
        print(res.to_text())
        print()
    if suite.last_reuse.total:
        print(f"reuse: {suite.last_reuse.one_line()}")
    _print_failures(policy)
    return 0 if results else 1


def cmd_doctor(args: argparse.Namespace) -> int:
    from repro.resilience.doctor import run_doctor

    results = run_doctor()
    for check in results:
        print(check.one_line())
    failed = [c for c in results if not c.ok]
    print(f"\n{len(results) - len(failed)}/{len(results)} checks passed")
    return 1 if failed else 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.model import diagnose

    machine = paper_machine(num_cores=args.cores)
    model = FalseSharingModel(machine, mode=args.mode, **_model_kwargs(args))
    for k in _load_kernels(args):
        result = model.analyze(k.nest, _threads_for(args, k), chunk=args.chunk)
        print(diagnose(result).to_text())
        print()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim import record_trace

    machine = paper_machine(num_cores=args.cores)
    for k in _load_kernels(args):
        out = args.output or f"{k.name.replace('.', '_')}.npz"
        meta = record_trace(
            k.nest, _threads_for(args, k), machine, out, chunk=args.chunk,
            max_steps=args.max_steps,
        )
        print(f"kernel {k.name}: wrote {meta.total_accesses:,} accesses "
              f"({meta.num_threads} threads, chunk={meta.chunk}) to {out}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import Manifest, default_manifest_path, nest_digest
    from repro.engine.incremental import ReuseReport
    from repro.model import WhatIfSweep

    machine = paper_machine(num_cores=args.cores)
    kwargs = _model_kwargs(args)
    sweep = WhatIfSweep(machine, use_predictor=not args.exact,
                        predictor_runs=args.runs, mode=args.mode,
                        detector_engine=kwargs["engine"],
                        steady_state=kwargs["steady_state"],
                        sim_jobs=kwargs["sim_jobs"])
    threads = tuple(int(t) for t in args.threads_list.split(","))
    chunks = tuple(int(c) for c in args.chunks_list.split(","))
    engine = _engine_from(args)
    budget = _budget_from(args)
    policy = _policy_from(args)
    manifest = manifest_path = None
    if args.since_manifest is not None:
        manifest_path = args.since_manifest or str(default_manifest_path())
        # A missing/corrupt manifest degrades to a full sweep (with a
        # warning), never an error — load() cannot raise.
        manifest = Manifest.load(manifest_path)
        if manifest.warning:
            print(f"warning: {manifest.warning}", file=sys.stderr)
    produced = 0
    reuse = ReuseReport()
    for path, k in _load_kernel_files(args, policy=policy):
        file_key = os.path.abspath(path)
        digest = nest_digest(k.nest)
        if manifest is not None and manifest.unchanged(
            file_key, k.nest.name, digest
        ):
            cells = len(sweep.feasible_grid(k.nest, threads, chunks))
            reuse.skip(cells)
            produced += cells
            print(f"kernel {k.name}: unchanged since manifest "
                  f"({cells} cells skipped)")
            continue
        result = sweep.sweep(k.nest, threads=threads, chunks=chunks,
                             engine=engine, budget=budget, policy=policy)
        reuse.merge(result.reuse)
        produced += len(result.points)
        print(f"kernel {k.name}: {len(result.points)} configurations")
        print(f"{'threads':>8} | {'chunk':>6} | {'FS cases':>10} | "
              f"{'FS share':>8} | {'est. cycles':>12}")
        for t, c, cases, share, wall in result.to_rows():
            print(f"{t:>8} | {c:>6} | {cases:>10,} | {share:>7.1f}% | "
                  f"{wall:>12,.0f}")
        for p in result.degraded_points:
            print(f"  degraded: t{p.threads} c{p.chunk} -> {p.fidelity} "
                  f"({p.degradation})")
        if result.points:
            best = result.best()
            print(f"best: {best.threads} threads, "
                  f"schedule(static,{best.chunk})")
        if manifest is not None and not result.failures:
            manifest.update(file_key, k.nest.name, digest)
    if manifest is not None and produced:
        manifest.save(manifest_path)
        print(f"manifest -> {manifest_path}")
    if reuse.total:
        print(f"reuse: {reuse.one_line()}")
    _print_failures(policy)
    # Keep-going semantics: a partial landscape is a successful run.
    # Only a sweep that produced *nothing* is a failure.
    return 0 if produced else 1


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import get_registry, get_tracer, span_summary

    rc = cmd_analyze(args)
    rows = span_summary(get_tracer().events())
    print()
    print(f"{'span':<28} {'count':>7} {'total ms':>10} {'mean us':>10}")
    for row in rows:
        print(f"{row.name:<28} {row.count:>7} {row.total_us / 1000:>10.2f} "
              f"{row.mean_us:>10.1f}")
    snap = get_registry().snapshot()
    interesting = ("fs_cases", "misses", "invalidations", "accesses")
    printed = [
        (key, value)
        for key, value in sorted(snap["counters"].items())
        if key.split("{", 1)[0] in interesting
    ]
    if printed:
        print()
        for key, value in printed:
            print(f"{key} = {value:,.0f}")
    print(f"\ntrace   -> {args.profile}")
    print(f"metrics -> {args.metrics_out}")
    return rc


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServeConfig, serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        shards=args.shards,
        mem_cache_mb=args.mem_cache_mb,
        concurrency=args.concurrency,
        batch_cells=args.batch_cells,
        tenants_file=args.tenants_file,
        state_file=args.state_file,
        store_dir=args.store_dir,
        use_cache=not args.no_cache,
        timeout_s=args.timeout,
        journal_dir=args.journal_dir,
        quarantine_after=args.quarantine_after,
        max_queue_depth=args.max_queue_depth,
        detector_engine=args.detector_engine,
        sim_jobs=args.sim_jobs,
    )
    return serve(config)


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import ResultStore, shared_memcache

    store = ResultStore(args.dir) if args.dir else ResultStore()
    tier = args.tier
    if args.cache_op == "stats":
        if tier in ("disk", "all"):
            print("[disk tier]")
            print(store.stats().to_text())
        if tier in ("mem", "all"):
            if tier == "all":
                print()
            print("[memory tier] (this process)")
            print(shared_memcache().stats().to_text())
    elif args.cache_op == "clear":
        if tier in ("disk", "all"):
            dropped = store.clear()
            print(f"removed {dropped:,} disk cache entries from {store.root}")
        if tier in ("mem", "all"):
            dropped = shared_memcache().clear()
            print(f"removed {dropped:,} memory-tier entries (this process)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fs",
        description="Compile-time false sharing detection via loop cost modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the full FS model on a C file")
    _add_common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("predict", help="fast FS prediction (linear regression)")
    _add_common(p)
    p.add_argument("--runs", type=int, default=20,
                   help="chunk runs to sample (default 20)")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("optimize", help="recommend a schedule chunk size")
    _add_common(p)
    p.add_argument("--runs", type=int, default=10,
                   help="chunk runs sampled per candidate (default 10)")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("experiments", help="regenerate the paper's experiments")
    p.add_argument("--scale", choices=("tiny", "full"), default="tiny")
    _add_model_flags(p)
    _add_engine_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "doctor",
        help="self-check the resilience machinery (exit 0 iff all pass)",
    )
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser(
        "cache", help="inspect or clear the engine's on-disk result store"
    )
    p.add_argument("cache_op", choices=("stats", "clear"),
                   help="stats: entry counts/sizes; clear: drop every entry")
    p.add_argument("--dir", default=None,
                   help="cache root (default $REPRO_CACHE_DIR or "
                        "~/.cache/repro)")
    p.add_argument("--tier", choices=("mem", "disk", "all"), default="all",
                   help="which cache tier to inspect/clear: the "
                        "in-process memory LRU, the on-disk store, or "
                        "both (default all)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "diagnose", help="full FS diagnosis: victims, hot lines, thread pairs"
    )
    _add_common(p)
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("trace", help="record the memory trace to a .npz file")
    _add_common(p)
    p.add_argument("--output", "-o", default=None, help="trace file path")
    p.add_argument("--max-steps", type=int, default=None,
                   help="truncate the trace after N lockstep steps")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "sweep", help="what-if landscape over (threads x chunk)"
    )
    _add_common(p)
    p.add_argument("--runs", type=int, default=8,
                   help="chunk runs sampled per configuration (default 8)")
    p.add_argument("--threads-list", default="2,4,8",
                   help="comma-separated thread counts (default 2,4,8)")
    p.add_argument("--chunks-list", default="1,2,4,8,16",
                   help="comma-separated chunk sizes (default 1,2,4,8,16)")
    p.add_argument("--exact", action="store_true",
                   help="request the full exact model per point instead of "
                        "the regression predictor (degrades down the "
                        "ladder under --max-iters/--deadline)")
    p.add_argument("--since-manifest", nargs="?", const="", default=None,
                   metavar="MANIFEST.json",
                   help="incremental mode: skip kernels whose nest digests "
                        "match the manifest recorded by the previous sweep, "
                        "then rewrite it (default path: "
                        "$REPRO_CACHE_DIR/manifest.json); a missing or "
                        "corrupt manifest falls back to a full sweep with "
                        "a warning")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "profile",
        help="run the analysis under the tracer; write trace + metrics",
    )
    _add_common(p)
    p.set_defaults(func=cmd_profile, _force_profile=True)

    p = sub.add_parser(
        "serve",
        help="run the analysis service daemon (HTTP/JSON API, "
             "/metrics, SIGTERM drain)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8377,
                   help="TCP port; 0 picks an ephemeral one (default 8377)")
    p.add_argument("--workers", type=int, default=2,
                   help="engine worker processes for sweep cells "
                        "(default 2; per shard when --shards > 1)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition sweep batches by job key across N "
                        "independent worker pools (default 1)")
    p.add_argument("--mem-cache-mb", type=int, default=64, metavar="MB",
                   help="shared in-memory result tier in MiB — the "
                        "cross-tenant warm cache (0 disables; default 64)")
    p.add_argument("--concurrency", type=int, default=2,
                   help="jobs progressing concurrently (default 2)")
    p.add_argument("--batch-cells", type=int, default=16,
                   help="cells submitted to the engine per batch; also "
                        "the cancellation granularity (default 16)")
    p.add_argument("--tenants-file", default=None,
                   help="tenants JSON (API keys + quotas); omit for a "
                        "single key-less public tenant")
    p.add_argument("--state-file", default=None,
                   help="queue-state file: SIGTERM persists unfinished "
                        "jobs here, the next boot restores them")
    p.add_argument("--store-dir", default=None,
                   help="result-store root (default $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result store (every cell recomputes)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-clock timeout in the engine pool")
    p.add_argument("--journal-dir", default=None,
                   help="write-ahead journal directory: admissions, "
                        "result rows and terminal states become "
                        "crash-durable (fsync'd before publication) and "
                        "the next boot resumes mid-sweep — survives "
                        "SIGKILL, unlike --state-file")
    p.add_argument("--quarantine-after", type=int, default=3,
                   metavar="N",
                   help="quarantine a job (REPRO-E105) after it crashes "
                        "worker processes N times; 0 disables "
                        "(default 3)")
    p.add_argument("--max-queue-depth", type=int, default=0, metavar="N",
                   help="shed new submissions with 503 + Retry-After "
                        "(REPRO-E106) while N or more jobs are queued; "
                        "0 = unbounded (default)")
    p.add_argument("--engine", choices=("auto", "jit", "fast", "reference"),
                   default="auto", dest="detector_engine",
                   help="FS detector engine for sweep cells (default "
                        "auto; results and cache keys are identical "
                        "for every engine)")
    p.add_argument("--sim-jobs", type=int, default=1, metavar="N",
                   help="segment-parallel simulation workers per "
                        "analysis (default 1; identical results)")
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.obs import ObsConfig, session

    args = build_parser().parse_args(argv)
    if getattr(args, "_force_profile", False):
        args.profile = args.profile or "trace.json"
        args.metrics_out = args.metrics_out or "metrics.json"
    config = ObsConfig.from_env().with_cli(
        trace_path=getattr(args, "profile", None),
        metrics_path=getattr(args, "metrics_out", None),
    )
    try:
        with session(config, reset_metrics=config.any_enabled):
            return args.func(args)
    except ReproError as exc:
        # Structured errors become one-line diagnostics with a stable
        # exit code (docs/RESILIENCE.md); the raw traceback is only for
        # REPRO_LOG=debug sessions.
        if os.environ.get("REPRO_LOG", "").strip().lower() == "debug":
            raise
        print(exc.one_line(), file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":
    sys.exit(main())
