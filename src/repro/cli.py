"""Command-line interface: ``repro-fs`` / ``python -m repro``.

Subcommands
-----------
``analyze``
    Parse a C/OpenMP file, run the FS model on every ``parallel for``
    nest and print an FS report (cases, victims, Eq. (1) share).
``predict``
    Same, but with the fast linear-regression predictor.
``optimize``
    Recommend a schedule chunk size per nest.
``diagnose``
    Full diagnosis: victims, hot lines, the inter-thread conflict matrix.
``sweep``
    What-if landscape over (threads × chunk).
``trace``
    Record the execution's memory trace to a compressed ``.npz``.
``experiments``
    Regenerate the paper's tables and figures (``--scale tiny`` for a
    quick look, ``full`` for the EXPERIMENTS.md numbers).
``profile``
    Run the full analysis with span tracing forced on; write a Chrome
    trace (Perfetto / ``chrome://tracing``) and a metrics dump, and
    print a per-stage timing summary.
``cache``
    Inspect (``stats``) or empty (``clear``) the batch engine's
    content-addressed result store.

Every analysis subcommand also accepts ``--profile TRACE.json`` /
``--metrics-out METRICS.json`` (or the ``REPRO_TRACE`` /
``REPRO_METRICS`` environment variables) — see docs/OBSERVABILITY.md —
plus the batch-engine flags ``--jobs N`` (worker processes; sweep and
experiments fan out, and ``--jobs N`` output is byte-identical to
``--jobs 1``) and ``--no-cache`` (skip the result store) — see
docs/ENGINE.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.costmodels import TotalCostModel
from repro.frontend import parse_c_source
from repro.ir import analyze_dependences
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor
from repro.transform import ChunkSizeOptimizer


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("file", help="C source file with OpenMP parallel loops")
    p.add_argument("--threads", "-t", type=int, default=None,
                   help="thread count to analyze (default: the pragma's "
                        "num_threads clause, else 8)")
    p.add_argument("--chunk", "-c", type=int, default=None,
                   help="override the schedule chunk size")
    p.add_argument("--cores", type=int, default=48,
                   help="machine core count (default 48, the paper's box)")
    p.add_argument("--mode", choices=("invalidate", "literal"),
                   default="invalidate", help="FS counting semantics")
    p.add_argument("-D", "--define", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="predefine an integer macro (repeatable)")
    p.add_argument("--profile", metavar="TRACE.json", default=None,
                   help="record spans and write a Chrome trace-event "
                        "JSON (open in Perfetto / chrome://tracing)")
    p.add_argument("--metrics-out", metavar="METRICS.json", default=None,
                   help="write the metrics registry to a JSON (or .csv) "
                        "dump at exit")
    _add_engine_flags(p)


def _add_engine_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for batch evaluation (default 1 "
                        "= serial; results are identical either way)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache ($REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")


def _engine_from(args: argparse.Namespace):
    """Build an :class:`repro.engine.Engine` from the common CLI flags."""
    from repro.engine import Engine

    return Engine(
        jobs=getattr(args, "jobs", 1),
        use_cache=not getattr(args, "no_cache", False),
    )


def _macros(defines: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for d in defines:
        name, _, value = d.partition("=")
        if not value.lstrip("-").isdigit():
            raise SystemExit(f"-D {d!r}: value must be an integer")
        out[name] = int(value)
    return out


def _load_kernels(args: argparse.Namespace):
    with open(args.file, encoding="utf-8") as fh:
        source = fh.read()
    kernels = parse_c_source(source, extra_macros=_macros(args.define))
    if not kernels:
        raise SystemExit(f"{args.file}: no OpenMP parallel for loops found")
    return kernels


def _threads_for(args: argparse.Namespace, kernel) -> int:
    """CLI flag first, then the pragma's num_threads clause, then 8."""
    if getattr(args, "threads", None):
        return args.threads
    if kernel.pragma.num_threads:
        return kernel.pragma.num_threads
    return 8


def cmd_analyze(args: argparse.Namespace) -> int:
    machine = paper_machine(num_cores=args.cores)
    model = FalseSharingModel(machine, mode=args.mode)
    total_model = TotalCostModel(machine)
    for k in _load_kernels(args):
        threads = _threads_for(args, k)
        deps = analyze_dependences(k.nest)
        if not deps.parallelizable(k.nest.parallel_var):
            print(f"kernel {k.name}: WARNING — the parallel loop "
                  f"{k.nest.parallel_var!r} carries a data dependence:")
            for d in deps.carried_by(k.nest.parallel_var):
                print(f"  {d}")
        r = model.analyze(k.nest, threads, chunk=args.chunk)
        fs_cycles = r.fs_cycles(machine)
        base = total_model.total_cycles(k.nest, threads, fs_cases=0.0)
        share = 100.0 * fs_cycles / (base + fs_cycles) if fs_cycles else 0.0
        print(f"kernel {k.name} ({k.nest.schedule}, {threads} threads)")
        print(f"  false sharing cases : {r.fs_cases:,} "
              f"({r.fs_read_cases:,} read / {r.fs_write_cases:,} write)")
        print(f"  est. FS time share  : {share:.1f}% of loop execution")
        for victim in r.victim_arrays()[:5]:
            print(f"  victim              : {victim.name} "
                  f"({victim.fs_cases:,} cases on {victim.lines:,} lines)")
        print(f"  evaluated           : {r.steps_evaluated:,} iterations "
              f"in {r.elapsed_seconds:.2f}s")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    machine = paper_machine(num_cores=args.cores)
    model = FalseSharingModel(machine, mode=args.mode)
    predictor = FalseSharingPredictor(model, n_runs=args.runs)
    for k in _load_kernels(args):
        p = predictor.predict(k.nest, _threads_for(args, k), chunk=args.chunk)
        print(f"kernel {k.name}: predicted {p.predicted_fs_cases:,.0f} FS cases "
              f"from {p.sampled_runs}/{p.total_runs} chunk runs "
              f"(fit R^2={p.fit.r2:.4f})")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    machine = paper_machine(num_cores=args.cores)
    optimizer = ChunkSizeOptimizer(machine, predictor_runs=args.runs)
    for k in _load_kernels(args):
        rec = optimizer.recommend(k.nest, _threads_for(args, k))
        print(f"kernel {k.name}: recommended schedule(static,{rec.best_chunk})")
        for s in rec.scores:
            marker = " <-- best" if s.chunk == rec.best_chunk else ""
            print(f"  chunk {s.chunk:4d}: {s.total_cycles:14,.0f} cycles "
                  f"({s.fs_cases:,.0f} FS cases){marker}")
        print(f"  predicted improvement vs chunk=1: "
              f"{rec.improvement_percent(1):.1f}%")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis import ExperimentSuite

    suite = ExperimentSuite(scale=args.scale)
    for res in suite.run_all(engine=_engine_from(args)):
        print(res.to_text())
        print()
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.model import diagnose

    machine = paper_machine(num_cores=args.cores)
    model = FalseSharingModel(machine, mode=args.mode)
    for k in _load_kernels(args):
        result = model.analyze(k.nest, _threads_for(args, k), chunk=args.chunk)
        print(diagnose(result).to_text())
        print()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim import record_trace

    machine = paper_machine(num_cores=args.cores)
    for k in _load_kernels(args):
        out = args.output or f"{k.name.replace('.', '_')}.npz"
        meta = record_trace(
            k.nest, _threads_for(args, k), machine, out, chunk=args.chunk,
            max_steps=args.max_steps,
        )
        print(f"kernel {k.name}: wrote {meta.total_accesses:,} accesses "
              f"({meta.num_threads} threads, chunk={meta.chunk}) to {out}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.model import WhatIfSweep

    machine = paper_machine(num_cores=args.cores)
    sweep = WhatIfSweep(machine, predictor_runs=args.runs)
    threads = tuple(int(t) for t in args.threads_list.split(","))
    chunks = tuple(int(c) for c in args.chunks_list.split(","))
    engine = _engine_from(args)
    for k in _load_kernels(args):
        result = sweep.sweep(k.nest, threads=threads, chunks=chunks,
                             engine=engine)
        print(f"kernel {k.name}: {len(result.points)} configurations")
        print(f"{'threads':>8} | {'chunk':>6} | {'FS cases':>10} | "
              f"{'FS share':>8} | {'est. cycles':>12}")
        for t, c, cases, share, wall in result.to_rows():
            print(f"{t:>8} | {c:>6} | {cases:>10,} | {share:>7.1f}% | "
                  f"{wall:>12,.0f}")
        best = result.best()
        print(f"best: {best.threads} threads, schedule(static,{best.chunk})")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import get_registry, get_tracer, span_summary

    rc = cmd_analyze(args)
    rows = span_summary(get_tracer().events())
    print()
    print(f"{'span':<28} {'count':>7} {'total ms':>10} {'mean us':>10}")
    for row in rows:
        print(f"{row.name:<28} {row.count:>7} {row.total_us / 1000:>10.2f} "
              f"{row.mean_us:>10.1f}")
    snap = get_registry().snapshot()
    interesting = ("fs_cases", "misses", "invalidations", "accesses")
    printed = [
        (key, value)
        for key, value in sorted(snap["counters"].items())
        if key.split("{", 1)[0] in interesting
    ]
    if printed:
        print()
        for key, value in printed:
            print(f"{key} = {value:,.0f}")
    print(f"\ntrace   -> {args.profile}")
    print(f"metrics -> {args.metrics_out}")
    return rc


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import ResultStore

    store = ResultStore(args.dir) if args.dir else ResultStore()
    if args.cache_op == "stats":
        print(store.stats().to_text())
    elif args.cache_op == "clear":
        dropped = store.clear()
        print(f"removed {dropped:,} cache entries from {store.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fs",
        description="Compile-time false sharing detection via loop cost modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the full FS model on a C file")
    _add_common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("predict", help="fast FS prediction (linear regression)")
    _add_common(p)
    p.add_argument("--runs", type=int, default=20,
                   help="chunk runs to sample (default 20)")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("optimize", help="recommend a schedule chunk size")
    _add_common(p)
    p.add_argument("--runs", type=int, default=10,
                   help="chunk runs sampled per candidate (default 10)")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("experiments", help="regenerate the paper's experiments")
    p.add_argument("--scale", choices=("tiny", "full"), default="tiny")
    _add_engine_flags(p)
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "cache", help="inspect or clear the engine's on-disk result store"
    )
    p.add_argument("cache_op", choices=("stats", "clear"),
                   help="stats: entry counts/sizes; clear: drop every entry")
    p.add_argument("--dir", default=None,
                   help="cache root (default $REPRO_CACHE_DIR or "
                        "~/.cache/repro)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "diagnose", help="full FS diagnosis: victims, hot lines, thread pairs"
    )
    _add_common(p)
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("trace", help="record the memory trace to a .npz file")
    _add_common(p)
    p.add_argument("--output", "-o", default=None, help="trace file path")
    p.add_argument("--max-steps", type=int, default=None,
                   help="truncate the trace after N lockstep steps")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "sweep", help="what-if landscape over (threads x chunk)"
    )
    _add_common(p)
    p.add_argument("--runs", type=int, default=8,
                   help="chunk runs sampled per configuration (default 8)")
    p.add_argument("--threads-list", default="2,4,8",
                   help="comma-separated thread counts (default 2,4,8)")
    p.add_argument("--chunks-list", default="1,2,4,8,16",
                   help="comma-separated chunk sizes (default 1,2,4,8,16)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "profile",
        help="run the analysis under the tracer; write trace + metrics",
    )
    _add_common(p)
    p.set_defaults(func=cmd_profile, _force_profile=True)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.obs import ObsConfig, session

    args = build_parser().parse_args(argv)
    if getattr(args, "_force_profile", False):
        args.profile = args.profile or "trace.json"
        args.metrics_out = args.metrics_out or "metrics.json"
    config = ObsConfig.from_env().with_cli(
        trace_path=getattr(args, "profile", None),
        metrics_path=getattr(args, "metrics_out", None),
    )
    with session(config, reset_metrics=config.any_enabled):
        return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
