"""Affine integer expressions over loop variables and symbolic parameters.

Array subscripts, loop bounds and — after flattening — byte addresses are
all affine functions ``c0 + Σ ci·vi`` of the loop induction variables.
Keeping them in this closed form is what makes the compile-time model
possible: the ownership-list generator evaluates whole *vectors* of
iteration points through one affine form with a single NumPy dot product
instead of re-walking an AST per iteration (the vectorize-don't-loop rule
from the HPC guides).

``AffineExpr`` is immutable and hashable; arithmetic returns new objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

import numpy as np

Number = Union[int, "AffineExpr"]


@dataclass(frozen=True)
class AffineExpr:
    """``const + Σ coeffs[v] * v`` with integer coefficients.

    Examples
    --------
    >>> i, j = AffineExpr.var("i"), AffineExpr.var("j")
    >>> e = 2 * i + j - 3
    >>> e.eval({"i": 5, "j": 1})
    8
    >>> e.variables()
    ('i', 'j')
    """

    const: int = 0
    coeffs: tuple[tuple[str, int], ...] = field(default_factory=tuple)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def const_expr(value: int) -> "AffineExpr":
        """The constant affine expression ``value``."""
        return AffineExpr(const=int(value))

    @staticmethod
    def var(name: str, coeff: int = 1) -> "AffineExpr":
        """The expression ``coeff * name``."""
        if coeff == 0:
            return AffineExpr(0)
        return AffineExpr(0, ((name, int(coeff)),))

    @staticmethod
    def from_mapping(const: int, coeffs: Mapping[str, int]) -> "AffineExpr":
        """Build from a {var: coeff} mapping, dropping zero coefficients."""
        items = tuple(sorted((v, int(c)) for v, c in coeffs.items() if c != 0))
        return AffineExpr(int(const), items)

    # -- queries -------------------------------------------------------------

    def coeff(self, var: str) -> int:
        """Coefficient of ``var`` (0 when absent)."""
        for v, c in self.coeffs:
            if v == var:
                return c
        return 0

    def variables(self) -> tuple[str, ...]:
        """Variables appearing with nonzero coefficient, sorted."""
        return tuple(v for v, _ in self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def as_int(self) -> int:
        """The value of a constant expression; raises otherwise."""
        if not self.is_constant:
            raise ValueError(f"{self} is not constant")
        return self.const

    # -- algebra -------------------------------------------------------------

    def _as_dict(self) -> dict[str, int]:
        return dict(self.coeffs)

    def __add__(self, other: Number) -> "AffineExpr":
        other = _coerce(other)
        merged = self._as_dict()
        for v, c in other.coeffs:
            merged[v] = merged.get(v, 0) + c
        return AffineExpr.from_mapping(self.const + other.const, merged)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr.from_mapping(-self.const, {v: -c for v, c in self.coeffs})

    def __sub__(self, other: Number) -> "AffineExpr":
        return self + (-_coerce(other))

    def __rsub__(self, other: Number) -> "AffineExpr":
        return _coerce(other) + (-self)

    def __mul__(self, factor: Number) -> "AffineExpr":
        """Multiply; at least one operand must be constant (stay affine)."""
        other = _coerce(factor)
        if other.is_constant:
            k = other.const
            return AffineExpr.from_mapping(
                self.const * k, {v: c * k for v, c in self.coeffs}
            )
        if self.is_constant:
            return other * self.const
        raise ValueError(
            f"product of two non-constant affine expressions is not affine: "
            f"({self}) * ({other})"
        )

    __rmul__ = __mul__

    # -- evaluation ----------------------------------------------------------

    def eval(self, env: Mapping[str, int]) -> int:
        """Evaluate with integer variable bindings.

        Raises ``KeyError`` when a needed variable is unbound.
        """
        total = self.const
        for v, c in self.coeffs:
            total += c * env[v]
        return total

    def eval_vectorized(
        self, env: Mapping[str, np.ndarray], length: int | None = None
    ) -> np.ndarray:
        """Evaluate over NumPy arrays of variable values.

        All arrays in ``env`` must share one length; the result has that
        length (or ``length`` for a constant expression).
        """
        if not self.coeffs:
            if length is None:
                for arr in env.values():
                    length = len(arr)
                    break
            if length is None:
                raise ValueError("length required to vectorize a constant expr")
            return np.full(length, self.const, dtype=np.int64)
        out: np.ndarray | None = None
        for v, c in self.coeffs:
            term = env[v].astype(np.int64, copy=False) * c
            out = term if out is None else out + term
        assert out is not None
        if self.const:
            out = out + self.const
        return out

    def substitute(self, bindings: Mapping[str, "AffineExpr | int"]) -> "AffineExpr":
        """Replace variables by affine expressions (e.g. bind parameters).

        >>> e = AffineExpr.var("N") + 1
        >>> e.substitute({"N": 10}).as_int()
        11
        """
        result = AffineExpr.const_expr(self.const)
        for v, c in self.coeffs:
            repl = bindings.get(v)
            if repl is None:
                result = result + AffineExpr.var(v, c)
            else:
                result = result + _coerce(repl) * c
        return result

    # -- misc ----------------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        for v, c in self.coeffs:
            if c == 1:
                parts.append(v)
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{c}*{v}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


def _coerce(value: Number) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, (int, np.integer)):
        return AffineExpr.const_expr(int(value))
    raise TypeError(f"cannot coerce {value!r} to AffineExpr")


def flatten_affine(
    exprs: Iterable[AffineExpr], weights: Iterable[int], const: int = 0
) -> AffineExpr:
    """Weighted sum ``const + Σ w_k · e_k`` of affine expressions.

    Used to flatten multi-dimensional subscripts into byte offsets:
    the weights are the per-dimension strides in bytes.
    """
    total = AffineExpr.const_expr(const)
    for e, w in zip(exprs, weights, strict=True):
        total = total + e * int(w)
    return total
