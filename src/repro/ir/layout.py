"""C type system and struct layout engine.

The false-sharing model needs *byte-accurate* addresses for every array
reference — including references into arrays of structs such as the
Phoenix linear-regression kernel's ``tid_args[j].sx`` — because false
sharing happens at cache-line granularity.  This module reimplements the
relevant slice of the System-V x86-64 ABI layout rules:

* primitive sizes/alignments (LP64),
* struct member offsets with alignment padding,
* trailing struct padding so arrays of structs tile correctly,
* nested structs and fixed-size member arrays.

The engine is deliberately independent of :mod:`pycparser`; the frontend
lowers parsed declarations into these types, and the programmatic kernel
builders construct them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def align_up(offset: int, alignment: int) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``.

    >>> align_up(5, 4)
    8
    >>> align_up(8, 4)
    8
    """
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (offset + alignment - 1) // alignment * alignment


class CType:
    """Base class for all C types.  Subclasses define size and alignment."""

    @property
    def size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def alignment(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def is_float(self) -> bool:
        """Whether arithmetic on this type uses floating-point units."""
        return False


@dataclass(frozen=True)
class PrimitiveType(CType):
    """A scalar C type such as ``int`` or ``double`` (LP64 model)."""

    name: str
    _size: int
    _float: bool = False

    @property
    def size(self) -> int:
        return self._size

    @property
    def alignment(self) -> int:
        # On x86-64 every primitive self-aligns.
        return self._size

    @property
    def is_float(self) -> bool:
        return self._float

    def __repr__(self) -> str:
        return f"PrimitiveType({self.name})"


# LP64 primitives; ``long double`` omitted intentionally (unused by kernels
# and its 16-byte x87 layout would be the only non-self-sized alignment).
CHAR = PrimitiveType("char", 1)
UCHAR = PrimitiveType("unsigned char", 1)
SHORT = PrimitiveType("short", 2)
USHORT = PrimitiveType("unsigned short", 2)
INT = PrimitiveType("int", 4)
UINT = PrimitiveType("unsigned int", 4)
LONG = PrimitiveType("long", 8)
ULONG = PrimitiveType("unsigned long", 8)
LONGLONG = PrimitiveType("long long", 8)
FLOAT = PrimitiveType("float", 4, _float=True)
DOUBLE = PrimitiveType("double", 8, _float=True)

#: Lookup used by the frontend when resolving declaration type names.
PRIMITIVES_BY_NAME = {
    "char": CHAR,
    "signed char": CHAR,
    "unsigned char": UCHAR,
    "short": SHORT,
    "short int": SHORT,
    "unsigned short": USHORT,
    "int": INT,
    "signed": INT,
    "signed int": INT,
    "unsigned": UINT,
    "unsigned int": UINT,
    "long": LONG,
    "long int": LONG,
    "unsigned long": ULONG,
    "unsigned long int": ULONG,
    "long long": LONGLONG,
    "long long int": LONGLONG,
    "unsigned long long": ULONG,
    "float": FLOAT,
    "double": DOUBLE,
    "size_t": ULONG,
    "_Bool": UCHAR,
}


@dataclass(frozen=True)
class PointerType(CType):
    """A pointer; 8 bytes on LP64.  The pointee is kept for lowering."""

    pointee: CType

    @property
    def size(self) -> int:
        return 8

    @property
    def alignment(self) -> int:
        return 8


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed-extent C array type (as a *member* type inside structs)."""

    element: CType
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"array extent must be positive, got {self.count}")

    @property
    def size(self) -> int:
        return self.element.size * self.count

    @property
    def alignment(self) -> int:
        return self.element.alignment


@dataclass(frozen=True)
class StructField:
    """A named member of a struct, with its computed byte offset."""

    name: str
    ctype: CType
    offset: int


@dataclass(frozen=True)
class StructType(CType):
    """A C struct with ABI-conformant member offsets and padding.

    Construction computes the layout eagerly so invalid definitions fail
    fast.  Use :meth:`field_offset` to resolve (possibly nested) member
    paths such as ``("points", "x")``.
    """

    name: str
    fields: tuple[StructField, ...]
    _size: int
    _alignment: int

    @classmethod
    def create(cls, name: str, members: Iterable[tuple[str, CType]]) -> "StructType":
        """Lay out ``members`` in declaration order per the SysV ABI."""
        offset = 0
        max_align = 1
        laid: list[StructField] = []
        seen: set[str] = set()
        for mname, mtype in members:
            if mname in seen:
                raise ValueError(f"duplicate struct member {mname!r} in {name!r}")
            seen.add(mname)
            a = mtype.alignment
            offset = align_up(offset, a)
            laid.append(StructField(mname, mtype, offset))
            offset += mtype.size
            max_align = max(max_align, a)
        if not laid:
            raise ValueError(f"struct {name!r} must have at least one member")
        size = align_up(offset, max_align)
        return cls(name, tuple(laid), size, max_align)

    @property
    def size(self) -> int:
        return self._size

    @property
    def alignment(self) -> int:
        return self._alignment

    def field(self, name: str) -> StructField:
        """Return the member named ``name``."""
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"struct {self.name!r} has no member {name!r}")

    def field_offset(self, path: Sequence[str]) -> int:
        """Byte offset of a nested member path from the struct start.

        >>> pt = StructType.create("point", [("x", DOUBLE), ("y", DOUBLE)])
        >>> s = StructType.create("s", [("tag", INT), ("p", pt)])
        >>> s.field_offset(("p", "y"))
        16
        """
        offset = 0
        ctype: CType = self
        for name in path:
            if not isinstance(ctype, StructType):
                raise TypeError(
                    f"cannot resolve member {name!r}: {ctype!r} is not a struct"
                )
            f = ctype.field(name)
            offset += f.offset
            ctype = f.ctype
        return offset

    def field_type(self, path: Sequence[str]) -> CType:
        """Type of a nested member path."""
        ctype: CType = self
        for name in path:
            if not isinstance(ctype, StructType):
                raise TypeError(
                    f"cannot resolve member {name!r}: {ctype!r} is not a struct"
                )
            ctype = ctype.field(name).ctype
        return ctype

    def __repr__(self) -> str:
        return f"StructType({self.name}, size={self._size}, align={self._alignment})"
