"""Array declarations, array references and the virtual address space.

The paper's model (Section III-B) assumes "all array variables are
aligned with the cache line boundary, so that it would be possible to
know the relative cache lines on which array elements are located at
compile-time".  :class:`AddressSpace` implements exactly that: each
declared array receives a line-aligned (by default page-aligned) base
address in a virtual layout, and every :class:`ArrayRef` can then be
flattened to a single affine byte-address function of the loop variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.ir.affine import AffineExpr, flatten_affine
from repro.ir.layout import CType, StructType, align_up


@dataclass(frozen=True)
class ArrayDecl:
    """A declared array: name, element type and (row-major) extents.

    ``dims`` are the extents of each dimension; they may be symbolic
    (``AffineExpr`` over parameters) until :meth:`bind` resolves them.
    A scalar shared variable is represented as a 0-dimensional array.
    """

    name: str
    element: CType
    dims: tuple[AffineExpr, ...] = ()

    @staticmethod
    def create(
        name: str, element: CType, dims: Sequence[int | AffineExpr] = ()
    ) -> "ArrayDecl":
        """Convenience constructor accepting int or affine extents."""
        norm = tuple(
            d if isinstance(d, AffineExpr) else AffineExpr.const_expr(d) for d in dims
        )
        return ArrayDecl(name, element, norm)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def concrete_dims(self) -> tuple[int, ...]:
        """Integer extents; raises when any extent is still symbolic."""
        out = []
        for d in self.dims:
            if not d.is_constant:
                raise ValueError(
                    f"array {self.name!r} has symbolic extent {d}; bind parameters first"
                )
            out.append(d.as_int())
        return tuple(out)

    def bind(self, params: Mapping[str, int]) -> "ArrayDecl":
        """Substitute symbolic parameters in the extents."""
        return ArrayDecl(
            self.name,
            self.element,
            tuple(d.substitute(dict(params)) for d in self.dims),
        )

    def size_bytes(self) -> int:
        """Total footprint of the array in bytes."""
        total = self.element.size
        for d in self.concrete_dims():
            total *= d
        return total

    def strides_bytes(self) -> tuple[int, ...]:
        """Row-major byte stride of each dimension.

        >>> from repro.ir.layout import DOUBLE
        >>> ArrayDecl.create("a", DOUBLE, (4, 5)).strides_bytes()
        (40, 8)
        """
        dims = self.concrete_dims()
        strides = [0] * len(dims)
        acc = self.element.size
        for k in range(len(dims) - 1, -1, -1):
            strides[k] = acc
            acc *= dims[k]
        return tuple(strides)


@dataclass(frozen=True)
class ArrayRef:
    """One static array reference in a loop body.

    Attributes
    ----------
    array:
        The referenced :class:`ArrayDecl`.
    indices:
        One affine subscript per array dimension, in loop variables.
    field_path:
        For arrays of structs, the (possibly nested) member accessed,
        e.g. ``("sx",)`` for ``tid_args[j].sx``.
    is_write:
        Whether this reference stores to memory.
    extra:
        Additional affine byte offset inside the element, used for
        subscripted struct members such as ``s[i].arr[k]`` (the ``k``
        term cannot be expressed through the array's own dimensions).
    """

    array: ArrayDecl
    indices: tuple[AffineExpr, ...]
    field_path: tuple[str, ...] = ()
    is_write: bool = False
    extra: AffineExpr = AffineExpr.const_expr(0)

    def __post_init__(self) -> None:
        if len(self.indices) != self.array.ndim:
            raise ValueError(
                f"reference to {self.array.name!r} has {len(self.indices)} "
                f"subscripts but the array has {self.array.ndim} dimensions"
            )
        if self.field_path and not isinstance(self.array.element, StructType):
            raise TypeError(
                f"field path {self.field_path} on non-struct array "
                f"{self.array.name!r}"
            )

    @property
    def accessed_type(self) -> CType:
        """Type of the scalar actually read or written."""
        elem = self.array.element
        if self.field_path:
            assert isinstance(elem, StructType)
            return elem.field_type(self.field_path)
        return elem

    def field_offset(self) -> int:
        """Byte offset of the accessed member within the array element."""
        if not self.field_path:
            return 0
        elem = self.array.element
        assert isinstance(elem, StructType)
        return elem.field_offset(self.field_path)

    def substitute(self, bindings: Mapping[str, AffineExpr | int]) -> "ArrayRef":
        """Substitute variables/parameters inside the subscripts."""
        return ArrayRef(
            self.array.bind({k: v for k, v in bindings.items() if isinstance(v, int)}),
            tuple(ix.substitute(dict(bindings)) for ix in self.indices),
            self.field_path,
            self.is_write,
            self.extra.substitute(dict(bindings)),
        )

    def offset_expr(self) -> AffineExpr:
        """Flatten subscripts to an affine *byte offset* from the array base."""
        return (
            flatten_affine(
                self.indices, self.array.strides_bytes(), const=self.field_offset()
            )
            + self.extra
        )

    def __str__(self) -> str:
        idx = "".join(f"[{ix}]" for ix in self.indices)
        fld = "".join(f".{f}" for f in self.field_path)
        rw = "W" if self.is_write else "R"
        return f"{self.array.name}{idx}{fld}:{rw}"


class AddressSpace:
    """Line-aligned virtual layout of a set of arrays.

    Arrays are placed in registration order, each base aligned to
    ``alignment`` (default: the page size, which subsumes the paper's
    line-alignment assumption), with a guard gap so distinct arrays never
    share a cache line — inter-array false sharing is therefore never an
    artifact of the layout itself.
    """

    def __init__(self, alignment: int = 4096, guard_bytes: int = 256) -> None:
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self.alignment = alignment
        self.guard_bytes = guard_bytes
        self._bases: dict[str, int] = {}
        self._arrays: dict[str, ArrayDecl] = {}
        self._cursor = alignment  # keep address 0 unused

    def place(self, array: ArrayDecl, base: int | None = None) -> int:
        """Assign (or explicitly set) the base address of ``array``.

        Placing the same name twice must provide an identical declaration.
        Returns the base address.
        """
        if array.name in self._bases:
            if self._arrays[array.name] != array:
                raise ValueError(
                    f"array {array.name!r} already placed with a different shape"
                )
            return self._bases[array.name]
        if base is None:
            base = align_up(self._cursor, self.alignment)
        elif base % self.alignment:
            raise ValueError(
                f"explicit base {base:#x} not aligned to {self.alignment}"
            )
        self._bases[array.name] = base
        self._arrays[array.name] = array
        self._cursor = base + array.size_bytes() + self.guard_bytes
        return base

    def base(self, name: str) -> int:
        """Base address of a placed array."""
        return self._bases[name]

    def arrays(self) -> tuple[ArrayDecl, ...]:
        """All placed arrays in placement order."""
        return tuple(self._arrays.values())

    def address_expr(self, ref: ArrayRef) -> AffineExpr:
        """Absolute affine byte-address function for a reference."""
        if ref.array.name not in self._bases:
            self.place(ref.array)
        return ref.offset_expr() + self._bases[ref.array.name]

    def line_ids(
        self, ref: ArrayRef, env: Mapping[str, np.ndarray], line_size: int,
        length: int | None = None,
    ) -> np.ndarray:
        """Vectorized cache-line ids touched by ``ref`` at iteration points.

        ``env`` maps loop variables to equal-length index arrays; the
        result holds one line id per iteration point.
        """
        addr = self.address_expr(ref).eval_vectorized(env, length=length)
        return addr // line_size
