"""Data dependence analysis for parallel-loop legality.

The paper's Parallel model "helps the compiler to decide whether the
parallelization of a loop is possible" (Section II-B3).  That decision
is a dependence test: a loop may be parallelized only when no
loop-carried dependence exists on its induction variable.  This module
implements the classical affine subscript tests used by loop-nest
optimizers:

* the **GCD test** — an integer-solvability filter for a subscript pair;
* the **Banerjee bounds test** — interval analysis of the difference of
  the two address functions over the iteration space;
* a **distance test** for the common single-induction-variable (SIV)
  case, which also produces the dependence distance.

The driver :func:`analyze_dependences` runs the tests over every
read/write and write/write pair of a nest and classifies each potential
dependence as carried by a given loop or loop-independent.  A nest is
safe to parallelize at a loop when no dependence is carried by it.

These are conservative *may-depend* tests: "independent" verdicts are
proofs, "dependent" verdicts may be false positives — the standard
compiler contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterator

from repro.ir.affine import AffineExpr
from repro.ir.loops import Loop, ParallelLoopNest
from repro.ir.refs import ArrayRef


#: Carrier sentinel: the dependence is carried by *every* enclosing loop
#: (loop-invariant colliding addresses, e.g. a scalar reduction).
ALL_LOOPS = "*"


@dataclass(frozen=True)
class Dependence:
    """One (possibly) loop-carried dependence between two references."""

    source: ArrayRef
    sink: ArrayRef
    kind: str               # "flow", "anti", "output"
    carrier: str | None     # loop var, ALL_LOOPS, or None = loop-independent
    distance: int | None    # SIV distance when computable

    def __str__(self) -> str:
        if self.carrier == ALL_LOOPS:
            where = "carried by every loop"
        elif self.carrier:
            where = f"carried by {self.carrier}"
        else:
            where = "loop-independent"
        dist = f", distance {self.distance}" if self.distance is not None else ""
        return f"{self.kind} dependence {self.source} -> {self.sink} ({where}{dist})"


@dataclass(frozen=True)
class DependenceReport:
    """All dependences of a nest, with parallelization verdicts."""

    dependences: tuple[Dependence, ...]

    def carried_by(self, var: str) -> tuple[Dependence, ...]:
        return tuple(
            d for d in self.dependences if d.carrier in (var, ALL_LOOPS)
        )

    def parallelizable(self, var: str) -> bool:
        """True when no dependence is carried by loop ``var``."""
        return not self.carried_by(var)


def _difference(a: ArrayRef, b: ArrayRef) -> AffineExpr:
    """Address-function difference h(I) = addr_a(I) − addr_b(I')
    with the sink's iteration renamed (primed) per variable."""
    da = a.offset_expr()
    db = b.offset_expr()
    primed = db.substitute({v: AffineExpr.var(v + "'") for v in db.variables()})
    return da - primed


def gcd_test(a: ArrayRef, b: ArrayRef) -> bool:
    """GCD solvability filter: can ``addr_a(I) == addr_b(I')`` have an
    integer solution at all?  Returns False when provably independent.

    >>> from repro.ir.layout import DOUBLE
    >>> from repro.ir.refs import ArrayDecl
    >>> arr = ArrayDecl.create("x", DOUBLE, (100,))
    >>> i = AffineExpr.var("i")
    >>> # x[2i] vs x[2i'+1]: 2i - 2i' = 1 has no integer solution.
    >>> gcd_test(ArrayRef(arr, (2 * i,)), ArrayRef(arr, (2 * i + 1,)))
    False
    """
    h = _difference(a, b)
    coeffs = [c for _, c in h.coeffs]
    if not coeffs:
        return h.const == 0
    g = 0
    for c in coeffs:
        g = gcd(g, abs(c))
    return h.const % g == 0 if g else h.const == 0


def banerjee_test(
    a: ArrayRef, b: ArrayRef, bounds: dict[str, tuple[int, int]]
) -> bool:
    """Banerjee interval test over rectangular bounds.

    ``bounds`` maps each loop variable to its inclusive (low, high)
    value range.  Returns False when the difference function cannot be
    zero anywhere in the space (proof of independence).
    """
    h = _difference(a, b)
    lo = hi = h.const
    for var, coeff in h.coeffs:
        base = var[:-1] if var.endswith("'") else var
        if base not in bounds:
            # Unknown range (symbolic parameter): stay conservative.
            return True
        vlo, vhi = bounds[base]
        if vlo > vhi:
            return False  # empty loop: no dependence possible
        lo += min(coeff * vlo, coeff * vhi)
        hi += max(coeff * vlo, coeff * vhi)
    return lo <= 0 <= hi


def siv_distance(a: ArrayRef, b: ArrayRef, var: str) -> int | None:
    """Dependence distance for a strong-SIV pair in ``var``.

    Both references must be affine with the *same* coefficient for
    ``var``; the distance is then ``(const_b − const_a) / coeff`` when
    integral.  Returns ``None`` when the pair is not strong-SIV.
    """
    da = a.offset_expr()
    db = b.offset_expr()
    ca = da.coeff(var)
    cb = db.coeff(var)
    if ca == 0 or ca != cb:
        return None
    others_a = {v: c for v, c in da.coeffs if v != var}
    others_b = {v: c for v, c in db.coeffs if v != var}
    if others_a != others_b:
        return None
    delta = da.const - db.const
    if delta % ca:
        return None  # non-integer distance: independent in this var
    return -(delta // ca)


def _loop_bounds(nest: ParallelLoopNest) -> dict[str, tuple[int, int]]:
    out: dict[str, tuple[int, int]] = {}
    for lp in nest.loops():
        if lp.lower.is_constant and lp.upper.is_constant:
            out[lp.var] = (lp.lower.as_int(), lp.upper.as_int() - 1)
    return out


def _ref_pairs(nest: ParallelLoopNest) -> Iterator[tuple[ArrayRef, ArrayRef, str]]:
    accs = nest.innermost_accesses()
    for i, a in enumerate(accs):
        for b in accs[i:]:
            if a.array.name != b.array.name:
                continue
            if not (a.is_write or b.is_write):
                continue
            if a.is_write and b.is_write:
                kind = "output"
            elif a.is_write:
                kind = "flow"
            else:
                kind = "anti"
            yield a, b, kind


def analyze_dependences(nest: ParallelLoopNest) -> DependenceReport:
    """Run the dependence tests over a bound nest.

    The returned report answers the Parallel model's legality question:
    ``report.parallelizable(nest.parallel_var)``.
    """
    bounds = _loop_bounds(nest)
    found: list[Dependence] = []
    for a, b, kind in _ref_pairs(nest):
        if not gcd_test(a, b):
            continue
        if not banerjee_test(a, b, bounds):
            continue
        # A dependence may exist; attribute it to the outermost loop
        # whose index distinguishes the two accesses.
        carrier: str | None = None
        distance: int | None = None
        for lp in nest.loops():
            d = siv_distance(a, b, lp.var)
            if d is None:
                # Variable participates but the pair is not strong-SIV:
                # conservatively mark this loop as a possible carrier if
                # the variable appears in either address function.
                if (
                    a.offset_expr().coeff(lp.var) != 0
                    or b.offset_expr().coeff(lp.var) != 0
                ):
                    carrier = lp.var
                    break
                continue
            if d != 0:
                carrier = lp.var
                distance = d
                break
        if carrier is None:
            spine_vars = {lp.var for lp in nest.loops()}
            involved = (
                set(a.offset_expr().variables())
                | set(b.offset_expr().variables())
            ) & spine_vars
            if not involved:
                # Loop-invariant colliding addresses (e.g. `s[0] += ...`):
                # every iteration pair conflicts — carried by every loop.
                found.append(Dependence(a, b, kind, ALL_LOOPS, None))
            else:
                # Same address at the same iteration only (e.g. the read
                # and write of `x[i] += ...`) — loop-independent.
                found.append(Dependence(a, b, kind, None, 0))
        else:
            found.append(Dependence(a, b, kind, carrier, distance))
    return DependenceReport(tuple(found))
