"""C source emission from the loop IR.

The inverse of the frontend: given a :class:`ParallelLoopNest`, emit
compilable C/OpenMP source — declarations (including struct layouts and
padding members), the pragma with its schedule, and the loop body.

Two uses:

* **round-trip testing** — ``parse_c_source(emit_nest(nest))`` must
  produce byte-identical address functions, pinning the frontend and
  the IR to each other from both directions;
* **transformation output** — the mitigation passes rewrite nests
  (padding, chunk changes); emission turns their result back into the
  source a user can apply.
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.exprtree import (
    BinOp,
    CallExpr,
    CastExpr,
    Const,
    Expr,
    LoadExpr,
    UnOp,
    VarRef,
)
from repro.ir.layout import (
    ArrayType,
    CType,
    PointerType,
    PrimitiveType,
    StructType,
)
from repro.ir.loops import Assign, Loop, ParallelLoopNest
from repro.ir.refs import ArrayRef


class EmitError(ValueError):
    """The IR contains a construct C emission does not support."""


def emit_affine(expr: AffineExpr) -> str:
    """Render an affine expression as C.

    >>> i = AffineExpr.var("i")
    >>> emit_affine(2 * i + 1)
    '2 * i + 1'
    >>> emit_affine(i - 1)
    'i - 1'
    """
    parts: list[str] = []
    for var, coeff in expr.coeffs:
        if coeff == 1:
            term = var
        elif coeff == -1:
            term = f"-{var}"
        else:
            term = f"{coeff} * {var}"
        parts.append(term)
    if expr.const or not parts:
        parts.append(str(expr.const))
    out = " + ".join(parts)
    return out.replace("+ -", "- ")


def _emit_ctype_name(ctype: CType) -> str:
    if isinstance(ctype, PrimitiveType):
        return ctype.name
    if isinstance(ctype, StructType):
        return ctype.name
    if isinstance(ctype, PointerType):
        return f"{_emit_ctype_name(ctype.pointee)} *"
    raise EmitError(f"cannot name type {ctype!r}")


def emit_struct(struct: StructType) -> str:
    """Emit a typedef'd struct definition with its members in order."""
    lines = ["typedef struct {"]
    for f in struct.fields:
        if isinstance(f.ctype, ArrayType):
            lines.append(
                f"    {_emit_ctype_name(f.ctype.element)} {f.name}[{f.ctype.count}];"
            )
        else:
            name = _emit_ctype_name(f.ctype)
            sep = "" if name.endswith("*") else " "
            lines.append(f"    {name}{sep}{f.name};")
    lines.append(f"}} {struct.name};")
    return "\n".join(lines)


def emit_ref(ref: ArrayRef) -> str:
    """Emit an array reference access path.

    Synthetic pointer-member arrays (``base.member`` names produced by
    the frontend) are re-expanded into their pointer form:
    ``tid_args.points`` with subscripts ``(j, i)`` becomes
    ``tid_args[j].points[i]``.
    """
    name = ref.array.name
    idx = [emit_affine(ix) for ix in ref.indices]
    if "." in name:
        base, *members = name.split(".")
        if len(idx) != len(members) + 1:
            raise EmitError(
                f"synthetic array {name!r} needs {len(members) + 1} subscripts"
            )
        out = base
        for member, subscript in zip(members, idx[:-1], strict=False):
            out += f"[{subscript}].{member}"
        out += f"[{idx[-1]}]"
    else:
        out = name + "".join(f"[{s}]" for s in idx)
    for fieldname in ref.field_path:
        out += f".{fieldname}"
    if ref.extra != AffineExpr.const_expr(0):
        raise EmitError(f"cannot emit extra-offset reference {ref}")
    return out


def emit_expr(expr: Expr) -> str:
    """Emit a computational expression."""
    if isinstance(expr, Const):
        if isinstance(expr.value, float) and not expr.ctype.is_float:
            return str(int(expr.value))
        if expr.ctype.is_float:
            v = repr(float(expr.value))
            return v
        return str(int(expr.value))
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, LoadExpr):
        return emit_ref(expr.ref)
    if isinstance(expr, BinOp):
        return f"({emit_expr(expr.left)} {expr.op} {emit_expr(expr.right)})"
    if isinstance(expr, UnOp):
        return f"{expr.op}({emit_expr(expr.operand)})"
    if isinstance(expr, CallExpr):
        args = ", ".join(emit_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, CastExpr):
        return f"(({_emit_ctype_name(expr.to)})({emit_expr(expr.operand)}))"
    raise EmitError(f"cannot emit expression {expr!r}")


def emit_stmt(stmt: Assign, indent: str) -> str:
    op = f"{stmt.augmented}=" if stmt.augmented else "="
    target = (
        emit_ref(stmt.target) if isinstance(stmt.target, ArrayRef) else stmt.target
    )
    return f"{indent}{target} {op} {emit_expr(stmt.rhs)};"


def _emit_loop(loop: Loop, nest: ParallelLoopNest, depth: int) -> list[str]:
    indent = "    " * (depth + 1)
    lines: list[str] = []
    if loop.var == nest.parallel_var:
        clause = f"schedule(static,{nest.schedule.chunk})" if nest.schedule.chunk \
            else "schedule(static)"
        private = f" private({', '.join(nest.private)})" if nest.private else ""
        lines.append(f"{indent}#pragma omp parallel for{private} {clause}")
    step = f"{loop.var} += {loop.step}" if loop.step != 1 else f"{loop.var}++"
    lines.append(
        f"{indent}for ({loop.var} = {emit_affine(loop.lower)}; "
        f"{loop.var} < {emit_affine(loop.upper)}; {step}) {{"
    )
    for item in loop.body:
        if isinstance(item, Loop):
            lines.extend(_emit_loop(item, nest, depth + 1))
        else:
            lines.append(emit_stmt(item, "    " * (depth + 2)))
    lines.append(f"{indent}}}")
    return lines


def _collect_structs(nest: ParallelLoopNest) -> list[StructType]:
    """Struct types referenced by the nest's arrays, dependency-ordered."""
    seen: dict[str, StructType] = {}

    def visit(ctype: CType) -> None:
        if isinstance(ctype, StructType):
            for f in ctype.fields:
                inner = f.ctype
                if isinstance(inner, (PointerType,)):
                    inner = inner.pointee
                if isinstance(inner, ArrayType):
                    inner = inner.element
                visit(inner)
            seen.setdefault(ctype.name, ctype)
        elif isinstance(ctype, PointerType):
            visit(ctype.pointee)
        elif isinstance(ctype, ArrayType):
            visit(ctype.element)

    for arr in nest.arrays():
        visit(arr.element)
    return list(seen.values())


def emit_nest(nest: ParallelLoopNest, function_name: str | None = None) -> str:
    """Emit a complete translation unit for one parallel nest.

    Declares every referenced struct and array at file scope, then the
    function with the loop nest and its OpenMP pragma.  Synthetic
    pointer-member arrays are folded back into pointer members of their
    base struct (they were declared there already), so only plain
    arrays get file-scope definitions.
    """
    function_name = function_name or nest.name.split(".")[0].replace("-", "_")
    lines: list[str] = []
    for struct in _collect_structs(nest):
        lines.append(emit_struct(struct))
        lines.append("")
    for arr in nest.arrays():
        if "." in arr.name:
            continue  # lives inside its base struct as a pointer member
        dims = "".join(f"[{d.as_int()}]" for d in arr.dims)
        name = _emit_ctype_name(arr.element)
        sep = "" if name.endswith("*") else " "
        lines.append(f"{name}{sep}{arr.name}{dims};")
    lines.append("")
    lines.append(f"void {function_name}(void)")
    lines.append("{")
    loop_vars = ", ".join(nest.loop_vars())
    lines.append(f"    int {loop_vars};")
    lines.extend(_emit_loop(nest.root, nest, 0))
    lines.append("}")
    return "\n".join(lines) + "\n"
