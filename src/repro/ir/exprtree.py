"""Computational expression trees for loop-body right-hand sides.

The processor model (Open64 Fig. 3) needs two things from each innermost
iteration: the *operation mix* (how many FP adds, multiplies, loads,
stores, calls...) to schedule against the functional units, and the
*dependence critical path* to estimate latency-bound stalls.  This
module provides a small expression IR carrying both.

It intentionally does not evaluate numerically — the model never executes
the program; it only counts and measures shapes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.ir.layout import CType, DOUBLE, INT
from repro.ir.refs import ArrayRef

#: Binary C operators understood by the tree, mapped to op-class prefixes.
_BINOP_CLASS = {
    "+": "add",
    "-": "add",  # sub costs like add
    "*": "mul",
    "/": "div",
    "%": "mod",
    "<": "cmp",
    ">": "cmp",
    "<=": "cmp",
    ">=": "cmp",
    "==": "cmp",
    "!=": "cmp",
    "&&": "logic",
    "||": "logic",
    "&": "logic",
    "|": "logic",
    "^": "logic",
    "<<": "shift",
    ">>": "shift",
}


class Expr:
    """Base class of computational expressions."""

    ctype: CType

    def children(self) -> tuple["Expr", ...]:
        return ()

    # -- analyses ------------------------------------------------------------

    def op_counts(self) -> Counter:
        """Multiset of op classes in this tree (see machine op latencies).

        Loads of array references count as ``load``; scalar variables are
        assumed register-resident (the paper's model only considers array
        references from the innermost loop, Section III-A).
        """
        counts: Counter = Counter()
        for node in self.walk():
            counts.update(node._own_ops())
        return counts

    def critical_path(self, latencies: Mapping[str, int]) -> int:
        """Longest latency chain from any leaf to this node's result."""
        child_cp = max(
            (c.critical_path(latencies) for c in self.children()), default=0
        )
        own = sum(latencies[op] * n for op, n in self._own_ops().items())
        return child_cp + own

    def refs(self) -> Iterator[ArrayRef]:
        """All array references loaded anywhere in the tree, in order."""
        for node in self.walk():
            if isinstance(node, LoadExpr):
                yield node.ref

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal."""
        yield self
        for c in self.children():
            yield from c.walk()

    def _own_ops(self) -> Counter:
        return Counter()


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant."""

    value: float
    ctype: CType = DOUBLE

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """A scalar variable (loop index or thread-private accumulator).

    Register-resident: contributes no memory operation.
    """

    name: str
    ctype: CType = INT

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LoadExpr(Expr):
    """A load of an array reference."""

    ref: ArrayRef

    def __post_init__(self) -> None:
        if self.ref.is_write:
            raise ValueError(f"LoadExpr wraps a read reference, got write {self.ref}")
        object.__setattr__(self, "ctype", self.ref.accessed_type)

    def _own_ops(self) -> Counter:
        return Counter({"load": 1})

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation; op class derives from operand types."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOP_CLASS:
            raise ValueError(f"unsupported binary operator {self.op!r}")
        is_f = self.left.ctype.is_float or self.right.ctype.is_float
        object.__setattr__(
            self, "ctype", self.left.ctype if self.left.ctype.is_float or not is_f
            else self.right.ctype
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def _own_ops(self) -> Counter:
        cls = _BINOP_CLASS[self.op]
        if cls in ("logic", "shift", "mod"):
            return Counter({cls if cls != "mod" else "mod": 1})
        is_f = self.left.ctype.is_float or self.right.ctype.is_float
        return Counter({("f" if is_f else "i") + cls: 1})

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary minus / logical not."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "ctype", self.operand.ctype)

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _own_ops(self) -> Counter:
        if self.op == "-":
            return Counter({"fneg" if self.ctype.is_float else "ineg": 1})
        return Counter({"logic": 1})

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class CallExpr(Expr):
    """An intrinsic/libm call such as ``cos(x)``."""

    func: str
    args: tuple[Expr, ...]
    ctype: CType = DOUBLE

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def _own_ops(self) -> Counter:
        return Counter({"call": 1})

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class CastExpr(Expr):
    """An explicit conversion, e.g. ``(double)n``."""

    to: CType
    operand: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "ctype", self.to)

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _own_ops(self) -> Counter:
        return Counter({"cast": 1})

    def __str__(self) -> str:
        return f"(cast){self.operand}"
