"""Validation of parallel loop nests prior to model analysis.

The FS model supports the class of loops the paper handles: perfectly
nested counted loops with affine subscripts, a static round-robin
schedule, and array references in the innermost body.  ``validate_nest``
checks those properties and raises :class:`NestValidationError` with a
precise message when one fails — a deliberately compiler-like diagnostic
so users learn *why* a loop is outside the modeled class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.loops import Assign, Loop, ParallelLoopNest


class NestValidationError(ValueError):
    """A loop nest is outside the class the FS model supports."""


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validation: fatal errors plus advisory warnings."""

    errors: tuple[str, ...]
    warnings: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.errors


def check_nest(nest: ParallelLoopNest, require_concrete: bool = True) -> ValidationReport:
    """Collect validation errors/warnings without raising."""
    errors: list[str] = []
    warnings: list[str] = []

    spine = nest.loops()
    spine_vars = [lp.var for lp in spine]

    # 1. Distinct induction variables.
    if len(set(spine_vars)) != len(spine_vars):
        errors.append(f"duplicate induction variables on spine: {spine_vars}")

    # 2. Perfect nesting: every non-innermost spine loop contains exactly
    #    one loop; statements outside the innermost loop are ignored by the
    #    model (Section III-A) and reported as warnings.
    for lp in spine[:-1]:
        subs = lp.subloops()
        if len(subs) != 1:
            errors.append(
                f"loop {lp.var!r} has {len(subs)} nested loops; the model "
                "requires a single perfect spine"
            )
        if lp.stmts():
            warnings.append(
                f"statements at loop level {lp.var!r} are outside the innermost "
                "loop and are ignored by the FS model"
            )

    # 3. Parallel loop must sit on the spine.
    if nest.parallel_var not in spine_vars:
        errors.append(f"parallel variable {nest.parallel_var!r} not on the spine")

    # 4. Innermost body must contain at least one memory access.
    innermost = spine[-1]
    if not any(isinstance(s, Assign) for s in innermost.body):
        errors.append("innermost loop has no statements")
    elif not nest.innermost_accesses():
        warnings.append(
            "innermost loop performs no array accesses; FS count will be zero"
        )

    # 5. Subscripts must be affine in spine variables / declared parameters.
    known = set(spine_vars) | set(nest.params)
    for ref in nest.innermost_accesses():
        for ix in ref.indices:
            unknown = [v for v in ix.variables() if v not in known]
            if unknown:
                errors.append(
                    f"subscript {ix} of {ref.array.name!r} uses unknown "
                    f"variables {unknown} (not loop indices or parameters)"
                )

    # 6. Bound shape checks.
    for lp in spine:
        free = set(lp.lower.variables()) | set(lp.upper.variables())
        outer = set(spine_vars[: spine_vars.index(lp.var)]) | set(nest.params)
        bad = free - outer
        if bad:
            errors.append(
                f"bounds of loop {lp.var!r} reference {sorted(bad)} which are "
                "neither enclosing loop variables nor parameters"
            )

    if require_concrete and not errors:
        try:
            counts = nest.trip_counts()
        except ValueError as exc:
            errors.append(str(exc))
        else:
            if any(c == 0 for c in counts):
                warnings.append(f"nest has an empty loop (trip counts {counts})")

    return ValidationReport(tuple(errors), tuple(warnings))


def validate_nest(nest: ParallelLoopNest, require_concrete: bool = True) -> ValidationReport:
    """Validate and raise :class:`NestValidationError` on any fatal error.

    Returns the full report (including warnings) when validation passes.
    """
    report = check_nest(nest, require_concrete=require_concrete)
    if not report.ok:
        raise NestValidationError(
            f"nest {nest.name!r} is not analyzable:\n  - " + "\n  - ".join(report.errors)
        )
    return report
