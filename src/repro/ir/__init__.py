"""High-level loop IR: the analogue of the WHIRL slice the paper consumes.

Submodules
----------
layout
    C type system with ABI-accurate struct layout (member offsets matter
    because false sharing is a byte-granularity phenomenon).
affine
    Affine integer expressions over loop variables — subscripts, bounds
    and flattened byte addresses, with vectorized evaluation.
exprtree
    Computational expression trees for operation counting and
    dependence-latency estimation (processor model input).
refs
    Array declarations, references and the line-aligned address space.
loops
    Statements, counted loops, OpenMP schedules and
    :class:`ParallelLoopNest` — the model's unit of analysis.
validate
    Analyzability checks with compiler-style diagnostics.
"""

from repro.ir.affine import AffineExpr, flatten_affine
from repro.ir.exprtree import (
    BinOp,
    CallExpr,
    CastExpr,
    Const,
    Expr,
    LoadExpr,
    UnOp,
    VarRef,
)
from repro.ir.layout import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    ArrayType,
    CType,
    PointerType,
    PrimitiveType,
    StructField,
    StructType,
    UINT,
    ULONG,
    align_up,
)
from repro.ir.emit import EmitError, emit_affine, emit_expr, emit_nest, emit_struct
from repro.ir.depend import (
    Dependence,
    DependenceReport,
    analyze_dependences,
    banerjee_test,
    gcd_test,
    siv_distance,
)
from repro.ir.loops import Assign, Loop, ParallelLoopNest, Schedule
from repro.ir.refs import AddressSpace, ArrayDecl, ArrayRef
from repro.ir.validate import NestValidationError, ValidationReport, check_nest, validate_nest

__all__ = [
    "AffineExpr",
    "flatten_affine",
    "BinOp",
    "CallExpr",
    "CastExpr",
    "Const",
    "Expr",
    "LoadExpr",
    "UnOp",
    "VarRef",
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "UINT",
    "ULONG",
    "ArrayType",
    "CType",
    "PointerType",
    "PrimitiveType",
    "StructField",
    "StructType",
    "align_up",
    "EmitError",
    "emit_affine",
    "emit_expr",
    "emit_nest",
    "emit_struct",
    "Dependence",
    "DependenceReport",
    "analyze_dependences",
    "banerjee_test",
    "gcd_test",
    "siv_distance",
    "Assign",
    "Loop",
    "ParallelLoopNest",
    "Schedule",
    "AddressSpace",
    "ArrayDecl",
    "ArrayRef",
    "NestValidationError",
    "ValidationReport",
    "check_nest",
    "validate_nest",
]
