"""Loop-nest IR: statements, loops and OpenMP parallel loop nests.

This is the "High-Level IR" of the reproduction — the analogue of the
WHIRL slice the paper's compiler pass consumes.  It carries exactly the
information Section III says the model needs: loop boundaries, step
sizes, index variables, the OpenMP schedule chunk size, and the array
references (with read/write direction) made in the loop body.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Union

from repro.ir.affine import AffineExpr
from repro.ir.exprtree import Expr
from repro.ir.refs import ArrayDecl, ArrayRef


@dataclass(frozen=True)
class Assign:
    """An assignment statement ``target (op)= rhs``.

    ``target`` is an :class:`ArrayRef` for memory stores, or a plain
    variable name for stores into thread-private scalars (which generate
    no memory traffic in the model — they live in registers).
    ``augmented`` holds the compound operator for ``+=``-style updates,
    which imply an additional *read* of the target before the write.
    """

    target: Union[ArrayRef, str]
    rhs: Expr
    augmented: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.target, ArrayRef) and not self.target.is_write:
            raise ValueError(f"assignment target must be a write ref: {self.target}")
        if self.augmented is not None and self.augmented not in ("+", "-", "*", "/"):
            raise ValueError(f"unsupported compound operator {self.augmented!r}")

    def accesses(self) -> tuple[ArrayRef, ...]:
        """Memory accesses of one execution, in program order.

        Right-hand-side loads first, then the read-for-update of an
        augmented target, then the store itself.
        """
        out: list[ArrayRef] = list(self.rhs.refs())
        if isinstance(self.target, ArrayRef):
            if self.augmented is not None:
                out.append(replace(self.target, is_write=False))
            out.append(self.target)
        return tuple(out)

    def __str__(self) -> str:
        op = f"{self.augmented}=" if self.augmented else "="
        return f"{self.target} {op} {self.rhs}"


Stmt = Assign
BodyItem = Union["Loop", Assign]


@dataclass(frozen=True)
class Loop:
    """A counted loop ``for (var = lower; var < upper; var += step)``.

    Bounds are affine in enclosing loop variables and symbolic
    parameters; ``upper`` is exclusive.  ``step`` must be a positive
    constant (the canonical form the paper's LNO phase normalizes to).
    """

    var: str
    lower: AffineExpr
    upper: AffineExpr
    body: tuple[BodyItem, ...]
    step: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"loop step must be positive, got {self.step}")
        if not self.body:
            raise ValueError(f"loop over {self.var!r} has an empty body")

    @staticmethod
    def create(
        var: str,
        lower: int | AffineExpr,
        upper: int | AffineExpr,
        body: list[BodyItem] | tuple[BodyItem, ...],
        step: int = 1,
    ) -> "Loop":
        """Convenience constructor accepting int bounds."""
        lo = lower if isinstance(lower, AffineExpr) else AffineExpr.const_expr(lower)
        up = upper if isinstance(upper, AffineExpr) else AffineExpr.const_expr(upper)
        return Loop(var, lo, up, tuple(body), step)

    # -- structure -----------------------------------------------------------

    def subloops(self) -> tuple["Loop", ...]:
        return tuple(item for item in self.body if isinstance(item, Loop))

    def stmts(self) -> tuple[Assign, ...]:
        return tuple(item for item in self.body if isinstance(item, Assign))

    def walk(self) -> Iterator["Loop"]:
        """This loop and all nested loops, outermost first."""
        yield self
        for sub in self.subloops():
            yield from sub.walk()

    # -- analysis helpers ----------------------------------------------------

    def trip_count(self, env: Mapping[str, int] | None = None) -> int:
        """Number of iterations given bindings for free variables.

        >>> from repro.ir.affine import AffineExpr as A
        >>> Loop.create("i", 0, 10, [_DUMMY], step=3).trip_count()
        4
        """
        env = env or {}
        lo = self.lower.eval(env)
        up = self.upper.eval(env)
        if up <= lo:
            return 0
        return -(-(up - lo) // self.step)

    def substitute(self, bindings: Mapping[str, AffineExpr | int]) -> "Loop":
        """Substitute parameters in bounds and subscripts, recursively.

        The loop's own induction variable is protected from substitution
        inside its body (it is a fresh binding, not a free parameter).
        """
        inner = {k: v for k, v in bindings.items() if k != self.var}
        new_body: list[BodyItem] = []
        for item in self.body:
            if isinstance(item, Loop):
                new_body.append(item.substitute(inner))
            else:
                new_body.append(_substitute_assign(item, inner))
        return Loop(
            self.var,
            self.lower.substitute(dict(bindings)),
            self.upper.substitute(dict(bindings)),
            tuple(new_body),
            self.step,
        )


def _substitute_assign(stmt: Assign, bindings: Mapping[str, AffineExpr | int]) -> Assign:
    from repro.ir.exprtree import LoadExpr  # local import to avoid cycle

    int_bindings = {k: v for k, v in bindings.items() if isinstance(v, int)}

    def fix_ref(ref: ArrayRef) -> ArrayRef:
        return ArrayRef(
            ref.array.bind(int_bindings),
            tuple(ix.substitute(dict(bindings)) for ix in ref.indices),
            ref.field_path,
            ref.is_write,
            ref.extra.substitute(dict(bindings)),
        )

    def fix_expr(e: Expr) -> Expr:
        if isinstance(e, LoadExpr):
            return LoadExpr(fix_ref(e.ref))
        kids = e.children()
        if not kids:
            return e
        # All composite nodes are frozen dataclasses; rebuild generically.
        import dataclasses

        fields = {}
        for f in dataclasses.fields(e):
            v = getattr(e, f.name)
            if isinstance(v, Expr):
                fields[f.name] = fix_expr(v)
            elif isinstance(v, tuple) and v and all(isinstance(x, Expr) for x in v):
                fields[f.name] = tuple(fix_expr(x) for x in v)
            else:
                fields[f.name] = v
        return type(e)(**fields)

    target = stmt.target
    if isinstance(target, ArrayRef):
        target = fix_ref(target)
    return Assign(target, fix_expr(stmt.rhs), stmt.augmented)


# A placeholder statement for doctest purposes only.
from repro.ir.exprtree import Const as _Const  # noqa: E402
from repro.ir.layout import DOUBLE as _DOUBLE, INT as _INT  # noqa: E402

_DUMMY = Assign("t", _Const(0.0, _DOUBLE))


@dataclass(frozen=True)
class Schedule:
    """An OpenMP loop schedule clause.

    Only ``static`` with an explicit chunk is modeled, per the paper's
    assumption that "chunks of a loop are distributed to threads in a
    round-robin fashion".  ``chunk=None`` means the default static
    blocking (one contiguous block per thread).
    """

    kind: str = "static"
    chunk: int | None = 1

    def __post_init__(self) -> None:
        if self.kind != "static":
            raise ValueError(
                f"only static schedules are modeled, got {self.kind!r}"
            )
        if self.chunk is not None and self.chunk <= 0:
            raise ValueError(f"chunk size must be positive, got {self.chunk}")

    def with_chunk(self, chunk: int | None) -> "Schedule":
        return Schedule(self.kind, chunk)

    def to_key_dict(self) -> dict:
        """Canonical dict for cache-key hashing (engine job specs)."""
        return {"kind": self.kind, "chunk": self.chunk}

    def __str__(self) -> str:
        return f"schedule({self.kind},{self.chunk})" if self.chunk else "schedule(static)"


@dataclass(frozen=True)
class ParallelLoopNest:
    """An OpenMP ``parallel for`` loop nest — the model's unit of analysis.

    Attributes
    ----------
    name:
        Human-readable kernel name for reports.
    root:
        Outermost loop of the nest.
    parallel_var:
        Induction variable of the loop carrying the worksharing construct.
    schedule:
        The static schedule (chunk size).
    private:
        Variables named in ``private(...)`` clauses (informational).
    params:
        Free symbolic parameters (e.g. ``N``, ``M``, ``num_threads``)
        appearing in bounds or extents, mapped to descriptions.
    """

    name: str
    root: Loop
    parallel_var: str
    schedule: Schedule = field(default_factory=Schedule)
    private: tuple[str, ...] = ()
    params: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.parallel_var not in [lp.var for lp in self.root.walk()]:
            raise ValueError(
                f"parallel variable {self.parallel_var!r} does not name a loop "
                f"in nest {self.name!r}"
            )

    # -- structure -----------------------------------------------------------

    def loops(self) -> tuple[Loop, ...]:
        """The perfect-nest spine: outermost loop down to the innermost.

        Follows the first (and for model-analyzable nests, only) subloop
        at each level.
        """
        spine = [self.root]
        while spine[-1].subloops():
            spine.append(spine[-1].subloops()[0])
        return tuple(spine)

    def innermost(self) -> Loop:
        return self.loops()[-1]

    def parallel_loop(self) -> Loop:
        for lp in self.loops():
            if lp.var == self.parallel_var:
                return lp
        raise ValueError(f"parallel loop {self.parallel_var!r} not on the nest spine")

    def parallel_depth(self) -> int:
        """0-based depth of the parallel loop on the spine."""
        for d, lp in enumerate(self.loops()):
            if lp.var == self.parallel_var:
                return d
        raise ValueError(f"parallel loop {self.parallel_var!r} not on the nest spine")

    def loop_vars(self) -> tuple[str, ...]:
        return tuple(lp.var for lp in self.loops())

    # -- accesses ------------------------------------------------------------

    def innermost_accesses(self) -> tuple[ArrayRef, ...]:
        """Ordered memory accesses of one innermost iteration.

        Per Section III-A the model identifies FS caused only by array
        references made in the innermost loop.
        """
        out: list[ArrayRef] = []
        for stmt in self.innermost().stmts():
            out.extend(stmt.accesses())
        return tuple(out)

    def arrays(self) -> tuple[ArrayDecl, ...]:
        """Distinct arrays referenced from the innermost loop, in order."""
        seen: dict[str, ArrayDecl] = {}
        for ref in self.innermost_accesses():
            seen.setdefault(ref.array.name, ref.array)
        return tuple(seen.values())

    # -- transformation ------------------------------------------------------

    def bind(self, params: Mapping[str, int]) -> "ParallelLoopNest":
        """Substitute symbolic parameters with concrete values."""
        return replace(
            self,
            root=self.root.substitute(dict(params)),
            params=tuple(p for p in self.params if p not in params),
        )

    def with_schedule(self, schedule: Schedule) -> "ParallelLoopNest":
        return replace(self, schedule=schedule)

    def with_chunk(self, chunk: int | None) -> "ParallelLoopNest":
        return replace(self, schedule=self.schedule.with_chunk(chunk))

    # -- shape queries -------------------------------------------------------

    def trip_counts(self) -> tuple[int, ...]:
        """Constant trip count of each spine loop (requires rectangularity)."""
        counts = []
        for lp in self.loops():
            if not (lp.lower.is_constant and lp.upper.is_constant):
                raise ValueError(
                    f"loop {lp.var!r} of {self.name!r} has non-constant bounds "
                    f"[{lp.lower}, {lp.upper}); bind parameters first"
                )
            counts.append(lp.trip_count())
        return tuple(counts)

    def total_iterations(self) -> int:
        """Total innermost iterations of the whole nest."""
        total = 1
        for c in self.trip_counts():
            total *= c
        return total

    def __str__(self) -> str:
        loops = " / ".join(
            f"{lp.var}:[{lp.lower},{lp.upper}):{lp.step}" for lp in self.loops()
        )
        return f"{self.name} [{loops}] parallel={self.parallel_var} {self.schedule}"
