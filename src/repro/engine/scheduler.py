"""The :class:`Engine`: memoized, parallel batch execution of jobs.

Flow of :meth:`Engine.run`::

    jobs ──dedupe by key──► cache lookup ──misses──► WorkerPool ──► store.put
                                 │ hits                                  │
                                 └──────────────► outcomes (input order) ◄┘

* Duplicate keys inside one batch are computed once and fanned out.
* Cache hits come back as :class:`~repro.engine.pool.JobOutcome` with
  ``from_cache=True`` and zero attempts — byte-identical payloads to
  what the original run stored.
* Failures never raise from :meth:`run`; they surface per job in the
  outcome (``outcome.ok`` / ``outcome.error``), so a 200-point sweep
  with one broken configuration still yields 199 results.

Observability (PR-1 layer): the engine maintains

* ``engine_jobs_total{status=completed|failed}`` counters,
* ``engine_cache_hits_total`` / ``engine_cache_misses_total`` (either
  tier; the memory tier additionally keeps its own
  ``engine_memcache_*`` counters — see :mod:`repro.engine.memcache`),
* ``engine_job_seconds`` histogram (per executed job),
* ``engine_pool_utilization`` gauge — executed-job busy-time divided by
  ``workers × batch wall time`` of the last batch,

and emits spans ``engine.run`` (whole batch), ``engine.cache_lookup``
and ``engine.execute`` around the respective stages.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Sequence

from repro.engine.job import Job
from repro.engine.memcache import MemCache
from repro.engine.pool import JobOutcome, WorkerPool, cancelled_outcome
from repro.resilience.errors import JobCancelledError
from repro.engine.store import ResultStore
from repro.obs import get_registry, span
from repro.resilience.errors import StoreError
from repro.util import get_logger

__all__ = ["Engine", "default_jobs"]

logger = get_logger(__name__)


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


class Engine:
    """Batch executor with content-addressed memoization.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) executes inline/serial.
    use_cache:
        Consult/populate the :class:`ResultStore`.  Disable for timing
        runs (``--no-cache``).
    store:
        Override the store (tests point this at a tmp dir); defaults to
        the shared ``$REPRO_CACHE_DIR`` location.
    mem_cache:
        Optional in-memory LRU tier (:class:`~repro.engine.memcache.MemCache`)
        consulted *before* the store; disk hits are promoted into it and
        computed results are written through to both tiers.  ``None``
        (default) keeps the historical single-tier behaviour.
    timeout_s / retries:
        Per-job failure budget, forwarded to :class:`WorkerPool`.
    inline:
        Forwarded to :class:`WorkerPool` — set ``False`` to force even
        a one-worker pool into a subprocess (the sharded engine does).
    """

    def __init__(
        self,
        jobs: int = 1,
        use_cache: bool = True,
        store: ResultStore | None = None,
        mem_cache: MemCache | None = None,
        timeout_s: float | None = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        inline: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.use_cache = use_cache
        self.store = store if store is not None else (
            ResultStore() if use_cache else None
        )
        self.mem_cache = mem_cache if use_cache else None
        self.pool = WorkerPool(
            workers=self.jobs, timeout_s=timeout_s, retries=retries,
            backoff_s=backoff_s, inline=inline,
        )
        reg = get_registry()
        self._jobs_total = reg.counter(
            "engine_jobs_total", "engine jobs by terminal status"
        )
        self._hits = reg.counter(
            "engine_cache_hits_total", "engine jobs served from the result store"
        )
        self._misses = reg.counter(
            "engine_cache_misses_total", "engine jobs that had to execute"
        )
        self._job_seconds = reg.histogram(
            "engine_job_seconds", "wall time of executed engine jobs"
        )
        self._utilization = reg.gauge(
            "engine_pool_utilization",
            "busy-fraction of the worker pool over the last batch",
        )

    # -- cache tiers --------------------------------------------------------

    def _lookup(self, key: str) -> tuple[dict | None, str | None]:
        """Two-tier cache lookup: ``(result, tier)`` or ``(None, None)``.

        Memory first (O(1), no deserialize), then disk; a disk hit is
        promoted into the memory tier so its next lookup is free.
        """
        if not self.use_cache:
            return None, None
        if self.mem_cache is not None:
            cached = self.mem_cache.get(key)
            if cached is not None:
                return cached, "mem"
        if self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                if self.mem_cache is not None:
                    self.mem_cache.put(key, cached, promoted=True)
                return cached, "disk"
        return None, None

    # -- public -------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        on_outcome: Callable[[JobOutcome], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> list[JobOutcome]:
        """Execute a batch; outcomes return in input order.

        ``on_outcome`` fires once per *input* job as it reaches a
        terminal state (cache hits first, then executions in completion
        order).

        ``should_stop`` is the cancellation hook for long-running
        callers (the analysis service): it is polled during the cache
        lookup and once more before the pool executes — when it turns
        true, every job that has not started resolves as a
        ``REPRO-E104`` cancellation while cache hits already fanned out
        keep their results.  Cancellation granularity is the batch the
        pool has in flight; callers wanting finer grain submit in
        smaller batches.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        with span("engine.run", n_jobs=len(jobs), workers=self.jobs):
            keys = [job.key() for job in jobs]
            outcomes: list[JobOutcome | None] = [None] * len(jobs)
            stopped = False

            # 1. cache lookup (+ intra-batch dedupe: first occurrence of
            #    a key owns the computation, the rest alias its result).
            owners: dict[str, int] = {}
            to_run: list[int] = []
            with span("engine.cache_lookup"):
                for i, (job, key) in enumerate(zip(jobs, keys)):
                    if not stopped and should_stop is not None and should_stop():
                        stopped = True
                    if stopped:
                        outcomes[i] = cancelled_outcome(job, "client cancel")
                        self._jobs_total.labels(status="cancelled").inc()
                        if on_outcome is not None:
                            on_outcome(outcomes[i])
                        continue
                    if key in owners:
                        continue
                    owners[key] = i
                    cached, tier = self._lookup(key)
                    if cached is not None:
                        self._hits.inc()
                        outcomes[i] = JobOutcome(
                            job, result=cached, attempts=0, from_cache=True,
                            cache_tier=tier,
                        )
                        if on_outcome is not None:
                            on_outcome(outcomes[i])
                    else:
                        self._misses.inc()
                        to_run.append(i)

            # 2. execute the misses (unless cancellation arrived while
            #    the lookup ran).
            if to_run and not stopped and should_stop is not None and should_stop():
                stopped = True
            if to_run and stopped:
                for i in to_run:
                    outcomes[i] = cancelled_outcome(jobs[i], "client cancel")
                    self._jobs_total.labels(status="cancelled").inc()
                    if on_outcome is not None:
                        on_outcome(outcomes[i])
                to_run = []
            if to_run:
                busy_s = 0.0
                t0 = time.perf_counter()

                def _record(outcome: JobOutcome) -> None:
                    nonlocal busy_s
                    busy_s += outcome.duration_s
                    self._job_seconds.observe(outcome.duration_s)
                    if outcome.ok:
                        status = "completed"
                    elif outcome.error_code == JobCancelledError.code:
                        status = "cancelled"
                    else:
                        status = "failed"
                    self._jobs_total.labels(status=status).inc()
                    if outcome.ok and self.use_cache:
                        key = outcome.job.key()
                        if self.mem_cache is not None:
                            # Write-through: a warm re-run in this
                            # process never touches the disk tier.
                            self.mem_cache.put(key, outcome.result)
                        if self.store is not None:
                            try:
                                self.store.put(
                                    key, outcome.result,
                                    kind=outcome.job.kind,
                                    label=outcome.job.label,
                                )
                            except StoreError as exc:
                                # A failed cache write degrades re-run
                                # speed, never the result in hand.
                                logger.warning(
                                    "cache write skipped for %s: %s",
                                    outcome.job.describe(), exc,
                                )
                    if on_outcome is not None:
                        on_outcome(outcome)

                with span("engine.execute", n_jobs=len(to_run)):
                    ran = self.pool.run([jobs[i] for i in to_run], _record)
                wall = max(time.perf_counter() - t0, 1e-9)
                self._utilization.set(
                    min(busy_s / (wall * self.pool.workers), 1.0)
                )
                for i, outcome in zip(to_run, ran):
                    outcomes[i] = outcome
            else:
                self._jobs_total.labels(status="completed").inc(0)

            # 3. fan cached/computed results out to intra-batch aliases.
            for i, (job, key) in enumerate(zip(jobs, keys)):
                if outcomes[i] is not None:
                    continue
                owner = outcomes[owners[key]]
                assert owner is not None
                outcomes[i] = JobOutcome(
                    job, result=owner.result, error=owner.error,
                    attempts=0, from_cache=True,
                    error_code=owner.error_code,
                    cache_tier=owner.cache_tier or "dedupe",
                )
                if on_outcome is not None:
                    on_outcome(outcomes[i])
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    def close(self, drain: bool = True) -> None:
        """Drain the worker pool: finish in-flight jobs, cancel pending.

        The shutdown half of the service's SIGTERM contract; see
        :meth:`repro.engine.pool.WorkerPool.close`.  Idempotent, safe
        from any thread.
        """
        self.pool.close(drain=drain)

    def run_strict(self, jobs: Sequence[Job]) -> list[dict]:
        """Like :meth:`run` but unwraps results, raising on any failure."""
        return [outcome.unwrap() for outcome in self.run(jobs)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(jobs={self.jobs}, use_cache={self.use_cache}, "
            f"store={self.store!r})"
        )
