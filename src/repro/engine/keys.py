"""Canonical serialization and stable hashing for engine job specs.

A cache key must satisfy two properties the default ``json``/``hash``
machinery does not give you:

* **order independence** — two dicts with the same items in different
  insertion order must serialize identically;
* **representation stability** — a float must hash the same on every
  Python version and platform.  ``repr(float)`` is shortest-round-trip
  since 3.1 and stable in practice, but the contract we actually want
  is *bit* equality, so floats are encoded via ``float.hex()`` which is
  an exact, injective image of the IEEE-754 bits.

The canonical form is a JSON document with sorted keys, no whitespace,
and every float replaced by a one-element marker object
``{"~f": "<hex>"}``; :func:`stable_hash` is the SHA-256 of its UTF-8
encoding.  ``int`` and ``bool`` pass through as themselves, so ``2``,
``2.0`` and ``True`` all hash differently — a schedule chunk of int 2
and float 2.0 are *different* jobs, by design.

Anything with a ``to_key_dict()`` method (``MachineConfig``,
``CacheLevel``, ``Schedule``, ...) is canonicalized through it, so new
config types opt into hashing by implementing that one method.

``KEY_SCHEMA_VERSION`` is folded into every job key by
:meth:`repro.engine.job.Job.key`; bump it whenever the canonical form
or any ``to_key_dict`` schema changes so stale cache entries miss
instead of colliding.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping, Sequence

__all__ = [
    "KEY_SCHEMA_VERSION",
    "canonical_key_value",
    "canonical_json",
    "stable_hash",
    "nest_digest",
]

#: Version of the canonical key schema.  Part of every job key.
KEY_SCHEMA_VERSION = 1

#: Marker key for the float encoding.  A tilde is not a valid Python
#: identifier character, so no ``to_key_dict`` field can collide.
_FLOAT_MARKER = "~f"


def canonical_key_value(obj: Any) -> Any:
    """Recursively convert ``obj`` to its canonical JSON-able form.

    Handles ``None``/``bool``/``int``/``str`` verbatim, floats via the
    hex marker, mappings with stringified+sorted keys, sequences as
    lists, and any object exposing ``to_key_dict()``.

    >>> canonical_key_value({"b": 1, "a": (1, 2)}) == {"a": [1, 2], "b": 1}
    True
    >>> canonical_key_value(0.5)
    {'~f': '0x1.0000000000000p-1'}
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            # NaN != NaN would make a job never hit its own cache entry.
            return {_FLOAT_MARKER: "nan"}
        if math.isinf(obj):
            return {_FLOAT_MARKER: "inf" if obj > 0 else "-inf"}
        return {_FLOAT_MARKER: obj.hex()}
    key_dict = getattr(obj, "to_key_dict", None)
    if callable(key_dict):
        return canonical_key_value(key_dict())
    if isinstance(obj, Mapping):
        out = {}
        for k in sorted(obj, key=str):
            if not isinstance(k, str):
                raise TypeError(
                    f"cache-key mapping keys must be str, got {type(k).__name__}"
                )
            out[k] = canonical_key_value(obj[k])
        return out
    if isinstance(obj, (list, tuple)) or (
        isinstance(obj, Sequence) and not isinstance(obj, (bytes, bytearray))
    ):
        return [canonical_key_value(v) for v in obj]
    raise TypeError(
        f"object of type {type(obj).__name__} is not cache-key serializable; "
        "give it a to_key_dict() method or pass plain data"
    )


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of ``obj`` (sorted keys, no whitespace).

    >>> canonical_json({"b": 2, "a": 1})
    '{"a":1,"b":2}'
    """
    return json.dumps(
        canonical_key_value(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def nest_digest(nest: Any) -> str:
    """Content digest of a loop nest: SHA-256 of its emitted C source.

    :func:`repro.ir.emit.emit_nest` is deterministic and captures
    everything the models read — bounds, steps, schedule, the body's
    reference pattern and array layouts — so two nests with the same
    emission are the same workload for caching purposes.
    """
    from repro.ir.emit import emit_nest  # deferred: keys must stay light

    text = emit_nest(nest)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
