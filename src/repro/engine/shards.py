"""Sharded sweep scheduler: partition one batch across N worker pools.

A single :class:`~repro.engine.scheduler.Engine` drives one
``ProcessPoolExecutor``.  That is plenty for a 48-point landscape; a
10⁶-cell what-if grid wants every core the box has *and* a partition
function that will later span hosts.  :class:`ShardedEngine` provides
both:

* jobs are partitioned by :func:`shard_of` — a pure function of the
  job's content-addressed ``stable_hash`` key, so the same job always
  lands on the same shard regardless of batch composition or shard
  *count* changes re-balancing everything deterministically.  This is
  the seam for a future cross-host scheduler: replace "shard index →
  local pool" with "shard index → socket" and nothing above changes;
* each shard is an independent :class:`Engine` (own
  :class:`~repro.engine.pool.WorkerPool`, ``inline=False`` so even
  one-worker shards occupy a real core) sharing **one** result store
  and **one** optional memory tier, so cross-shard cache reuse is free;
* the merge is deterministic: outcomes return in input order, making
  sharded output byte-identical to the serial engine (each cell's
  evaluation is already deterministic — the shard layer adds no
  ordering dependence).

Because duplicate keys hash to the same shard, the per-shard in-batch
dedupe *is* the global dedupe.

Observability: ``engine_shard_jobs_total{shard=N}`` counters,
``engine_shard_utilization{shard=N}`` gauges (executed-job busy time ÷
shard wall time) and an ``engine_shard_imbalance`` gauge
(``max/mean − 1`` of per-shard job counts; 0 = perfectly balanced).

:func:`make_engine` is the one-stop factory the CLI, runner and service
use to turn ``--jobs/--shards/--mem-cache-mb`` into the right engine.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.engine.job import Job
from repro.engine.memcache import DEFAULT_MEM_CACHE_MB, MemCache
from repro.engine.pool import JobOutcome
from repro.engine.scheduler import Engine
from repro.engine.store import ResultStore
from repro.obs import get_registry, span
from repro.util import get_logger

__all__ = ["ShardedEngine", "make_engine", "shard_of"]

logger = get_logger(__name__)


def shard_of(key: str, shards: int) -> int:
    """The shard owning cache key ``key`` among ``shards`` partitions.

    Pure and stable: derived from the leading 64 bits of the SHA-256
    job key, so any process (or, later, any host) computes the same
    placement without coordination.
    """
    if shards <= 1:
        return 0
    return int(key[:16], 16) % shards


class ShardedEngine:
    """N independent engines behind one deterministic partition.

    Parameters
    ----------
    shards:
        Partition count; each shard gets its own worker pool.
    jobs_per_shard:
        Worker processes per shard (total parallelism is
        ``shards × jobs_per_shard``).
    store / mem_cache / use_cache:
        Shared across every shard — one content-addressed disk store,
        one optional memory tier.
    inline:
        ``False`` (default) keeps one-worker shards in subprocesses so
        N shards really use N cores.  Tests flip it to ``True`` for
        cheap thread-parallel inline execution.
    timeout_s / retries / backoff_s:
        Per-job failure budgets, forwarded to every shard's pool.
    """

    def __init__(
        self,
        shards: int = 2,
        jobs_per_shard: int = 1,
        use_cache: bool = True,
        store: ResultStore | None = None,
        mem_cache: MemCache | None = None,
        timeout_s: float | None = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        inline: bool = False,
    ) -> None:
        self.shards = max(1, int(shards))
        self.jobs_per_shard = max(1, int(jobs_per_shard))
        self.use_cache = use_cache
        if store is None and use_cache:
            store = ResultStore()
        self.store = store if use_cache else None
        self.mem_cache = mem_cache if use_cache else None
        self.engines = [
            Engine(
                jobs=self.jobs_per_shard,
                use_cache=use_cache,
                store=self.store,
                mem_cache=self.mem_cache,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                inline=inline,
            )
            for _ in range(self.shards)
        ]
        reg = get_registry()
        self._shard_jobs = reg.counter(
            "engine_shard_jobs_total", "jobs dispatched per shard"
        )
        self._shard_util = reg.gauge(
            "engine_shard_utilization",
            "executed-job busy time / shard wall time, last batch",
        )
        self._imbalance = reg.gauge(
            "engine_shard_imbalance",
            "max/mean - 1 of per-shard job counts over the last batch "
            "(0 = perfectly balanced)",
        )

    # -- facade -------------------------------------------------------------

    @property
    def jobs(self) -> int:
        """Total worker processes across every shard (Engine-compatible)."""
        return self.shards * self.jobs_per_shard

    @property
    def pools(self) -> list:
        """Every shard's :class:`~repro.engine.pool.WorkerPool`."""
        return [engine.pool for engine in self.engines]

    def partition(self, jobs: Sequence[Job]) -> list[list[int]]:
        """Input indices per shard, preserving input order inside each."""
        buckets: list[list[int]] = [[] for _ in range(self.shards)]
        for i, job in enumerate(jobs):
            buckets[shard_of(job.key(), self.shards)].append(i)
        return buckets

    # -- public -------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        on_outcome: Callable[[JobOutcome], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> list[JobOutcome]:
        """Execute a batch across every shard; outcomes in input order.

        ``on_outcome`` fires from shard threads under one lock (so
        callers can keep non-thread-safe accumulators), once per input
        job.  ``should_stop`` is polled by every shard — cancellation
        semantics match :meth:`Engine.run`.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        buckets = self.partition(jobs)
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        cb_lock = threading.Lock()
        errors: list[BaseException] = []

        locked_cb = None
        if on_outcome is not None:
            def locked_cb(outcome: JobOutcome) -> None:
                with cb_lock:
                    on_outcome(outcome)

        def run_shard(shard: int, indices: list[int]) -> None:
            try:
                ran = self.engines[shard].run(
                    [jobs[i] for i in indices],
                    on_outcome=locked_cb,
                    should_stop=should_stop,
                )
                for i, outcome in zip(indices, ran):
                    outcomes[i] = outcome
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with cb_lock:
                    errors.append(exc)

        active = [
            (shard, indices)
            for shard, indices in enumerate(buckets)
            if indices
        ]
        with span(
            "engine.shard_run",
            n_jobs=len(jobs),
            shards=len(active),
            workers=self.jobs,
        ):
            import time

            t0 = time.perf_counter()
            threads = []
            for shard, indices in active:
                self._shard_jobs.labels(shard=shard).inc(len(indices))
                thread = threading.Thread(
                    target=run_shard,
                    args=(shard, indices),
                    name=f"repro-shard-{shard}",
                    daemon=True,
                )
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join()
            wall = max(time.perf_counter() - t0, 1e-9)
        if errors:
            raise errors[0]
        assert all(o is not None for o in outcomes)
        self._publish_batch_metrics(buckets, outcomes, wall)
        return outcomes  # type: ignore[return-value]

    def run_strict(self, jobs: Sequence[Job]) -> list[dict]:
        """Like :meth:`run` but unwraps results, raising on any failure."""
        return [outcome.unwrap() for outcome in self.run(jobs)]

    def close(self, drain: bool = True) -> None:
        """Drain every shard's pool (idempotent, any thread)."""
        for engine in self.engines:
            engine.close(drain=drain)

    def reopen(self) -> None:
        """Clear a previous drain on every shard's pool."""
        for engine in self.engines:
            engine.pool.reopen()

    # -- metrics ------------------------------------------------------------

    def _publish_batch_metrics(
        self,
        buckets: list[list[int]],
        outcomes: list[JobOutcome | None],
        wall: float,
    ) -> None:
        counts = [len(indices) for indices in buckets]
        mean = sum(counts) / len(counts) if counts else 0.0
        self._imbalance.set(max(counts) / mean - 1.0 if mean else 0.0)
        for shard, indices in enumerate(buckets):
            busy = sum(
                outcomes[i].duration_s
                for i in indices
                if outcomes[i] is not None and not outcomes[i].from_cache
            )
            denom = wall * self.jobs_per_shard
            self._shard_util.labels(shard=shard).set(
                min(busy / denom, 1.0) if denom else 0.0
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine(shards={self.shards}, "
            f"jobs_per_shard={self.jobs_per_shard}, "
            f"use_cache={self.use_cache})"
        )


def make_engine(
    jobs: int = 1,
    shards: int = 1,
    use_cache: bool = True,
    store: ResultStore | None = None,
    mem_cache: MemCache | None = None,
    mem_cache_mb: int = DEFAULT_MEM_CACHE_MB,
    timeout_s: float | None = None,
    retries: int = 2,
    backoff_s: float = 0.05,
):
    """Build the engine the ``--jobs/--shards/--mem-cache-mb`` flags ask for.

    * ``shards <= 1`` → a plain :class:`Engine` with ``jobs`` workers;
    * ``shards > 1`` → a :class:`ShardedEngine` with ``jobs`` workers
      *per shard* (``--jobs 2 --shards 4`` = 8 worker processes);
    * ``mem_cache_mb > 0`` (default 64) puts a fresh
      :class:`~repro.engine.memcache.MemCache` of that byte budget in
      front of the store; ``0`` disables the memory tier.  Pass an
      explicit ``mem_cache`` (e.g. :func:`~repro.engine.memcache.shared_memcache`)
      to share a tier across engines — the service does.
    """
    if mem_cache is None and use_cache and mem_cache_mb and mem_cache_mb > 0:
        mem_cache = MemCache(max_bytes=int(mem_cache_mb) * 2**20)
    if shards <= 1:
        return Engine(
            jobs=jobs,
            use_cache=use_cache,
            store=store,
            mem_cache=mem_cache,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
        )
    return ShardedEngine(
        shards=shards,
        jobs_per_shard=jobs,
        use_cache=use_cache,
        store=store,
        mem_cache=mem_cache,
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
    )
