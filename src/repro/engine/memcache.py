"""In-memory LRU result cache: the fast tier in front of the store.

The on-disk :class:`~repro.engine.store.ResultStore` makes warm re-runs
*cheap* — but every hit still costs an ``open`` + ``read`` + JSON parse.
For interactive landscapes (10⁵–10⁶ cells re-queried while a user drags
a slider) and for the analysis service's cross-tenant warm cache, that
per-hit deserialize dominates.  :class:`MemCache` removes it: a
thread-safe, strictly bounded LRU that hands back the already-parsed
result dict in O(1).

Tiering contract (enforced by :class:`~repro.engine.scheduler.Engine`):

* **lookup** — memory first, then disk; a disk hit is *promoted* into
  the memory tier so the next hit is free;
* **write-through** — a computed result lands in both tiers, so a
  re-run inside the same process never touches the disk at all;
* **bounds** — both an entry count and a byte budget (estimated from
  the result's canonical JSON size); eviction is LRU.  An oversized
  single result is simply not cached in memory (the disk tier still
  holds it).

Results handed out by :meth:`MemCache.get` are the *same object* every
time — callers must treat cached result dicts as immutable (every
engine consumer already does: results are converted to frozen domain
objects via ``from_dict``).

Observability: ``engine_memcache_{hits,misses,promotions,evictions}_total``
counters plus ``engine_memcache_entries`` / ``engine_memcache_bytes``
gauges, all in the process registry (and therefore on the service's
``/metrics`` endpoint).

:func:`shared_memcache` returns the process-wide instance used by the
service and by ``repro-fs cache stats|clear --tier mem`` — one memory
tier per process, shared across every engine/shard that opts in.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import get_registry

__all__ = [
    "DEFAULT_MEM_CACHE_MB",
    "MemCache",
    "MemCacheStats",
    "shared_memcache",
]

#: Default memory-tier budget for CLI/service wiring (``--mem-cache-mb``).
DEFAULT_MEM_CACHE_MB = 64


@dataclass
class MemCacheStats:
    """Point-in-time view of one memory tier (``repro-fs cache stats``)."""

    entries: int = 0
    total_bytes: int = 0
    max_entries: int = 0
    max_bytes: int = 0
    hits: int = 0
    misses: int = 0
    promotions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_text(self) -> str:
        lines = [
            f"entries         : {self.entries:,} (cap {self.max_entries:,})",
            f"total size      : {self.total_bytes / 1024:,.1f} KiB "
            f"(cap {self.max_bytes / 2**20:,.0f} MiB)",
            f"hits / misses   : {self.hits:,} / {self.misses:,} "
            f"({100.0 * self.hit_rate:.1f}% hit rate)",
            f"promotions      : {self.promotions:,} (disk hits copied up)",
            f"evictions       : {self.evictions:,}",
        ]
        return "\n".join(lines)


def _result_bytes(result: dict) -> int:
    """Byte-budget estimate: the canonical JSON size of the result.

    Matches what the disk tier would store, so ``max_bytes`` means the
    same thing in both tiers.  Falls back to a rough constant for the
    (never-expected) unserializable result rather than raising.
    """
    try:
        return len(json.dumps(result, separators=(",", ":"), allow_nan=True))
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return 4096


class MemCache:
    """Thread-safe LRU over result dicts, bounded by entries *and* bytes.

    Parameters
    ----------
    max_entries:
        Entry-count bound (LRU eviction past it).
    max_bytes:
        Byte budget over the entries' estimated JSON sizes.  A single
        result larger than the whole budget is never admitted.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_bytes: int = DEFAULT_MEM_CACHE_MB * 2**20,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[dict, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._promotions = 0
        self._evictions = 0
        reg = get_registry()
        self._m_hits = reg.counter(
            "engine_memcache_hits_total",
            "engine jobs served from the in-memory result tier",
        )
        self._m_misses = reg.counter(
            "engine_memcache_misses_total",
            "memory-tier lookups that fell through to disk/compute",
        )
        self._m_promotions = reg.counter(
            "engine_memcache_promotions_total",
            "disk-tier hits promoted into the memory tier",
        )
        self._m_evictions = reg.counter(
            "engine_memcache_evictions_total",
            "memory-tier entries evicted by the entry/byte bounds",
        )
        self._g_entries = reg.gauge(
            "engine_memcache_entries", "entries resident in the memory tier"
        )
        self._g_bytes = reg.gauge(
            "engine_memcache_bytes",
            "estimated bytes resident in the memory tier",
        )

    # -- read/write ---------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The cached result for ``key`` (marking it most-recent), or None.

        The returned dict is shared — treat it as immutable.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._m_hits.inc()
            return entry[0]

    def put(self, key: str, result: dict, promoted: bool = False) -> bool:
        """Insert/refresh ``key``; returns whether it is now resident.

        ``promoted=True`` marks a disk-tier hit being copied up (counted
        separately from write-through inserts).  Oversized results are
        rejected without evicting anything useful.
        """
        size = _result_bytes(result)
        with self._lock:
            if size > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (result, size)
            self._bytes += size
            if promoted:
                self._promotions += 1
                self._m_promotions.inc()
            evicted = 0
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                victim_key, (_, victim_size) = self._entries.popitem(last=False)
                self._bytes -= victim_size
                evicted += 1
                if victim_key == key:
                    # The new entry itself was the LRU victim (byte
                    # budget smaller than this batch's results).
                    break
            if evicted:
                self._evictions += evicted
                self._m_evictions.inc(evicted)
            self._sync_gauges()
            return key in self._entries

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- maintenance --------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry; returns how many were resident."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()
            return dropped

    def stats(self) -> MemCacheStats:
        with self._lock:
            return MemCacheStats(
                entries=len(self._entries),
                total_bytes=self._bytes,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
                hits=self._hits,
                misses=self._misses,
                promotions=self._promotions,
                evictions=self._evictions,
            )

    def _sync_gauges(self) -> None:
        self._g_entries.set(len(self._entries))
        self._g_bytes.set(self._bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemCache(entries={len(self)}, max_entries={self.max_entries}, "
            f"max_bytes={self.max_bytes})"
        )


_shared_lock = threading.Lock()
_shared: MemCache | None = None


def shared_memcache(
    max_entries: int = 65536,
    max_bytes: int = DEFAULT_MEM_CACHE_MB * 2**20,
) -> MemCache:
    """The process-wide memory tier (created on first call).

    Later calls return the same instance regardless of arguments — the
    first caller (the service daemon, usually) fixes the bounds.  This
    is the shared read path: every engine/shard pointing here serves
    any tenant's warm cell without a disk deserialize.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = MemCache(max_entries=max_entries, max_bytes=max_bytes)
        return _shared


def _reset_shared_memcache() -> None:
    """Test hook: drop the process-wide instance."""
    global _shared
    with _shared_lock:
        _shared = None
