"""The engine's unit of work: a declarative, hashable :class:`Job`.

A job is split into two halves:

* ``spec`` — plain JSON-able data that *identifies* the computation:
  the kernel-source digest, the canonical :class:`MachineConfig` key
  dict, the schedule/threads knobs, the model flavor.  The spec is the
  only input to the cache key (:meth:`Job.key`), so two jobs with equal
  specs are interchangeable and share one cached result.
* ``payload`` — picklable runtime objects (the actual ``MachineConfig``
  and ``ParallelLoopNest``) the worker needs to *run* the computation.
  The payload is deliberately excluded from the key: the spec must
  already pin its content (via digests/key dicts), and hashing live IR
  trees would make the key schema hostage to internal representation.

Job *kinds* name a runner function.  Runners live next to the code they
parallelize (``repro.model.whatif`` owns ``whatif.point``), registered
lazily through :data:`BUILTIN_RUNNERS` so worker processes import only
what a job actually needs.  Runners take a :class:`Job` and return a
JSON-able dict — that dict is what the store persists and what the
caller reconstructs domain objects from.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.engine.keys import KEY_SCHEMA_VERSION, stable_hash
from repro.resilience.errors import EngineError
from repro.resilience.faults import fault_point

__all__ = [
    "Job",
    "JobError",
    "register_runner",
    "resolve_runner",
    "run_job",
]


class JobError(EngineError):
    """A job failed in a way retries will not fix (unknown kind, bad spec).

    An :class:`~repro.resilience.errors.EngineError` (stable code
    ``REPRO-E101``, CLI exit 5); still a :class:`RuntimeError` through
    the taxonomy's MRO, so pre-taxonomy handlers keep working.
    """

    code = "REPRO-E101"  # registered in repro.resilience.errors


@dataclass(frozen=True)
class Job:
    """One declarative model/sim evaluation.

    ``label`` is a human-readable tag for logs, spans and failure
    messages; it does not participate in the key.
    """

    kind: str
    spec: Mapping[str, Any]
    payload: Mapping[str, Any] = field(default_factory=dict, compare=False)
    label: str = ""

    def key(self) -> str:
        """Content-addressed identity: SHA-256 over (schema, kind, spec)."""
        return stable_hash(
            {"schema": KEY_SCHEMA_VERSION, "kind": self.kind, "spec": self.spec}
        )

    def describe(self) -> str:
        return self.label or f"{self.kind}:{self.key()[:12]}"


# -- runner registry ---------------------------------------------------------

#: Job kinds shipped with the repo, resolved lazily as ``module:function``
#: so a worker process only imports the subsystem its job touches.
BUILTIN_RUNNERS: dict[str, str] = {
    "whatif.point": "repro.model.whatif:run_point_job",
    "model.segment": "repro.model.simparallel:run_segment_job",
    "experiment.driver": "repro.analysis.experiments:run_experiment_job",
    "sensitivity.output": "repro.analysis.sensitivity:run_output_job",
    # Test doubles (used by tests/test_engine.py to exercise crash
    # isolation, timeouts and retry without touching the model).
    "engine.test.echo": "repro.engine.job:_run_echo",
    "engine.test.fail": "repro.engine.job:_run_fail",
    "engine.test.sleep": "repro.engine.job:_run_sleep",
    "engine.test.crash": "repro.engine.job:_run_crash",
    "engine.test.flaky_crash": "repro.engine.job:_run_flaky_crash",
}

_RUNNERS: dict[str, Callable[[Job], dict]] = {}


def register_runner(
    kind: str, fn: Callable[[Job], dict] | None = None
) -> Callable:
    """Register ``fn`` as the runner for ``kind`` (also a decorator).

    Explicit registration wins over :data:`BUILTIN_RUNNERS`; third-party
    job kinds use this directly.
    """

    def _register(f: Callable[[Job], dict]) -> Callable[[Job], dict]:
        _RUNNERS[kind] = f
        return f

    return _register(fn) if fn is not None else _register


def resolve_runner(kind: str) -> Callable[[Job], dict]:
    """The runner callable for ``kind``, importing lazily if needed."""
    fn = _RUNNERS.get(kind)
    if fn is not None:
        return fn
    path = BUILTIN_RUNNERS.get(kind)
    if path is None:
        raise JobError(f"unknown job kind {kind!r}")
    mod_name, _, fn_name = path.partition(":")
    fn = getattr(importlib.import_module(mod_name), fn_name)
    _RUNNERS[kind] = fn
    return fn


def run_job(job: Job) -> dict:
    """Execute ``job`` in the current process and return its result dict.

    This is the function worker processes invoke; it must stay
    module-level (and importable as ``repro.engine.job.run_job``) so the
    :class:`~concurrent.futures.ProcessPoolExecutor` can pickle it by
    reference.

    ``fault_point("engine.job")`` fires *inside* the worker process for
    pooled runs — a ``crash`` action there exercises the pool's
    crash-isolation path exactly like a real segfault would.
    """
    fault_point("engine.job", label=job.describe())
    result = resolve_runner(job.kind)(job)
    if not isinstance(result, dict):
        raise JobError(
            f"runner for {job.kind!r} returned {type(result).__name__}, "
            "expected a JSON-able dict"
        )
    return result


# -- test-double runners -----------------------------------------------------


def _run_echo(job: Job) -> dict:
    """Return the spec's ``value`` (plus an attempt-independent marker)."""
    return {"value": job.spec.get("value"), "pid_dependent": False}


def _run_fail(job: Job) -> dict:
    raise RuntimeError(job.spec.get("message", "deterministic failure"))


def _run_sleep(job: Job) -> dict:
    import time

    time.sleep(float(job.spec["seconds"]))
    return {"slept": job.spec["seconds"]}


def _run_crash(job: Job) -> dict:
    """Die like a segfault: the interpreter exits without cleanup."""
    import os

    os._exit(int(job.spec.get("code", 137)))


def _run_flaky_crash(job: Job) -> dict:
    """Crash the worker until ``crashes`` attempts have happened.

    Cross-process state lives in a sentinel directory: each attempt
    creates one marker file, and the runner hard-exits while there are
    fewer markers than requested crashes.  Lets tests observe
    crash → retry → success end to end.
    """
    import os
    import uuid

    sentinel_dir = job.spec["sentinel_dir"]
    os.makedirs(sentinel_dir, exist_ok=True)
    attempts = len(os.listdir(sentinel_dir))
    with open(os.path.join(sentinel_dir, uuid.uuid4().hex), "w"):
        pass
    if attempts < int(job.spec.get("crashes", 1)):
        os._exit(139)
    return {"attempts_observed": attempts + 1}
