"""Process worker pool: crash isolation, per-job timeout, bounded retry.

Why not a bare :class:`~concurrent.futures.ProcessPoolExecutor`?  Three
failure modes it handles badly for batch analysis:

* **worker death** (segfault in a C extension, ``os._exit``, OOM kill)
  breaks the whole executor — every pending future raises
  :class:`~concurrent.futures.process.BrokenProcessPool`.  The pool
  here rebuilds the executor and resubmits the unfinished jobs, so one
  bad configuration costs one job slot, not the run.
* **hangs**: a future has no portable kill switch.  The pool bounds
  submissions to a sliding window of ``workers`` in-flight jobs (so a
  wait on the oldest future measures *run* time, not queue time), and a
  deadline overrun abandons the executor — the hung worker process is
  terminated with the pool instead of blocking a slot forever.
* **transient faults** get ``retries`` additional attempts with linear
  backoff; deterministic exceptions simply fail fast on the final
  attempt and surface per job, never as a raised exception from
  :meth:`WorkerPool.run`.

``workers <= 1`` runs jobs inline in the calling process (no pickling,
no subprocess spin-up) with identical outcome semantics — that is the
``--jobs 1`` reference path the equivalence tests compare against.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.job import Job, run_job
from repro.obs import get_registry
from repro.resilience.errors import EngineError, JobCancelledError
from repro.util import get_logger

__all__ = ["JobOutcome", "WorkerPool", "cancelled_outcome"]

logger = get_logger(__name__)


@dataclass
class JobOutcome:
    """Terminal state of one job: a result dict or an error string.

    ``error_code`` is the stable :mod:`repro.resilience.errors` code for
    the failure (``REPRO-E102`` for crashes, ``REPRO-E103`` for
    timeouts, the raised :class:`~repro.resilience.errors.ReproError`'s
    own code, or ``REPRO-E100`` for anything else).  ``retry_history``
    records the error string of every *non-final* attempt, so a report
    can show "crashed twice, then timed out" rather than just the
    terminal state.

    ``cache_tier`` records *where* a ``from_cache`` result came from:
    ``"mem"`` (in-memory LRU tier), ``"disk"`` (the on-disk store) or
    ``"dedupe"`` (an intra-batch alias of a job computed in the same
    batch); ``None`` for executed jobs.  Reuse reports
    (:mod:`repro.engine.incremental`) aggregate it per sweep.
    """

    job: Job
    result: dict | None = None
    error: str | None = None
    attempts: int = 1
    duration_s: float = 0.0
    from_cache: bool = False
    error_code: str | None = None
    retry_history: tuple[str, ...] = ()
    cache_tier: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> dict:
        """The result dict, raising :class:`EngineError` if the job
        failed (a :class:`RuntimeError` through the taxonomy MRO)."""
        if self.error is not None:
            raise EngineError(
                f"job {self.job.describe()} failed after "
                f"{self.attempts} attempt(s): {self.error}",
                code=self.error_code or EngineError.code,
                context={
                    "job": self.job.describe(),
                    "attempts": self.attempts,
                    "retry_history": list(self.retry_history),
                },
            )
        assert self.result is not None
        return self.result


def cancelled_outcome(job: Job, reason: str = "shutdown drain") -> JobOutcome:
    """A terminal ``REPRO-E104`` outcome for a job that never ran.

    Used by the pool's drain path and the engine's cancellation hook so
    pending work surfaces as a structured diagnostic, not a traceback.
    """
    return JobOutcome(
        job,
        error=f"cancelled before running ({reason})",
        attempts=0,
        error_code=JobCancelledError.code,
    )


def _classify(exc: BaseException) -> str:
    """Stable error code for an exception raised by a runner."""
    code = getattr(exc, "code", None)
    return code if isinstance(code, str) else EngineError.code


class _Timeout(Exception):
    """Internal marker: the oldest in-flight job overran its deadline."""


@dataclass
class _Attempt:
    job: Job
    index: int  # position in the caller's job list
    attempts: int = 0
    history: list[str] = None  # errors of non-final attempts

    def __post_init__(self) -> None:
        if self.history is None:
            self.history = []


class WorkerPool:
    """Run batches of jobs with bounded parallelism and failure budgets.

    Parameters
    ----------
    workers:
        Process count; ``<= 1`` executes inline (deterministic
        reference path).
    timeout_s:
        Per-job wall-clock budget once running.  ``None`` disables the
        watchdog.  A timed-out job is failed (and retried if attempts
        remain); its worker process dies with the abandoned executor.
    retries:
        Extra attempts after the first, for crashes, timeouts and
        exceptions alike.
    backoff_s:
        Linear backoff unit: attempt ``k`` sleeps ``k * backoff_s``
        before resubmission.
    inline:
        Whether ``workers <= 1`` may execute in the calling process
        (the default, and the deterministic reference path).  A sharded
        engine sets ``inline=False`` so even a one-worker shard runs in
        a real subprocess — N single-worker shards then occupy N cores
        instead of contending for the caller's GIL.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout_s: float | None = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        inline: bool = True,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.inline = inline
        self._closing = threading.Event()
        reg = get_registry()
        self._retries_total = reg.counter(
            "engine_retries_total", "job attempts retried after a failure"
        )
        self._crashes_total = reg.counter(
            "engine_worker_crashes_total",
            "worker-process deaths observed by the pool",
        )
        self._rebuilds_total = reg.counter(
            "engine_pool_rebuilds_total",
            "executor rebuilds after a broken or abandoned process pool",
        )

    # -- lifecycle ----------------------------------------------------------

    @property
    def closing(self) -> bool:
        """Whether a drain has been requested (``close`` called)."""
        return self._closing.is_set()

    def close(self, drain: bool = True) -> None:
        """Stop starting new jobs; finish what is already running.

        Safe to call from any thread (including a signal handler) while
        a batch is in flight: in-flight jobs run to completion and keep
        their real outcomes, while jobs still waiting in the submission
        queue finish immediately as structured ``REPRO-E104``
        cancellations — no traceback, no lost results.  Idempotent.

        ``drain=False`` reserves space for a future hard-kill path; for
        now both modes let in-flight work finish (terminating workers
        mid-job would discard results for no latency win on the short
        cell jobs the pool runs).
        """
        del drain  # both modes drain; see docstring
        self._closing.set()

    def reopen(self) -> None:
        """Clear a previous :meth:`close` so the pool accepts work again
        (used by tests and by services that survive a cancelled batch)."""
        self._closing.clear()

    def handle_signals(
        self, signums: Sequence[int] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Install handlers that drain this pool on ``signums``.

        The previous handler is chained after the drain flag is set, so
        stacking with an outer service's own shutdown logic works.  Only
        callable from the main thread (a Python signal restriction).
        """
        for signum in signums:
            previous = signal.getsignal(signum)

            def _drain(sig, frame, _previous=previous):
                self.close(drain=True)
                if callable(_previous) and _previous not in (
                    signal.SIG_IGN, signal.SIG_DFL
                ):
                    _previous(sig, frame)

            signal.signal(signum, _drain)

    # -- public -------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        on_outcome: Callable[[JobOutcome], None] | None = None,
    ) -> list[JobOutcome]:
        """Execute every job; outcomes come back in input order.

        ``on_outcome`` fires as each job reaches a terminal state (in
        completion order) — the scheduler uses it to write cache entries
        and bump metrics while the batch is still running.

        A :meth:`close` (e.g. from a SIGTERM handler) while the batch
        runs finishes in-flight jobs and resolves everything still
        queued as ``REPRO-E104`` cancellations.
        """
        if not jobs:
            return []
        if self.closing:
            outcomes = [cancelled_outcome(job) for job in jobs]
            if on_outcome is not None:
                for outcome in outcomes:
                    on_outcome(outcome)
            return outcomes
        if self.workers <= 1 and self.inline:
            return self._run_inline(jobs, on_outcome)
        return self._run_pool(jobs, on_outcome)

    # -- inline path --------------------------------------------------------

    def _run_inline(
        self,
        jobs: Sequence[Job],
        on_outcome: Callable[[JobOutcome], None] | None,
    ) -> list[JobOutcome]:
        outcomes: list[JobOutcome] = []
        for job in jobs:
            if self.closing:
                outcome = cancelled_outcome(job)
                outcomes.append(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
                continue
            attempts = 0
            history: list[str] = []
            while True:
                attempts += 1
                t0 = time.perf_counter()
                try:
                    result = run_job(job)
                    outcome = JobOutcome(
                        job, result=result, attempts=attempts,
                        duration_s=time.perf_counter() - t0,
                        retry_history=tuple(history),
                    )
                    break
                except Exception as exc:  # noqa: BLE001 - surfaced per job
                    rendered = f"{type(exc).__name__}: {exc}"
                    if attempts > self.retries:
                        outcome = JobOutcome(
                            job,
                            error=rendered,
                            attempts=attempts,
                            duration_s=time.perf_counter() - t0,
                            error_code=_classify(exc),
                            retry_history=tuple(history),
                        )
                        break
                    history.append(rendered)
                    self._retries_total.inc()
                    time.sleep(self.backoff_s * attempts)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
        return outcomes

    # -- process-pool path --------------------------------------------------

    def _run_pool(
        self,
        jobs: Sequence[Job],
        on_outcome: Callable[[JobOutcome], None] | None,
    ) -> list[JobOutcome]:
        pending: list[_Attempt] = [_Attempt(job, i) for i, job in enumerate(jobs)]
        done: dict[int, JobOutcome] = {}

        def finish(outcome_index: int, outcome: JobOutcome) -> None:
            done[outcome_index] = outcome
            if on_outcome is not None:
                on_outcome(outcome)

        while pending:
            pending = self._pool_round(pending, finish)
        return [done[i] for i in range(len(jobs))]

    def _pool_round(
        self,
        pending: list[_Attempt],
        finish: Callable[[int, JobOutcome], None],
    ) -> list[_Attempt]:
        """One executor lifetime.

        Returns attempts that must be resubmitted on a fresh executor
        (after a crash or timeout poisoned this one).  Jobs that exhaust
        their attempt budget are finished as failures instead.
        """
        executor = ProcessPoolExecutor(max_workers=self.workers)
        retry: list[_Attempt] = []
        queue = list(pending)
        inflight: dict[Future, tuple[_Attempt, float]] = {}
        broken = False
        try:
            while queue or inflight:
                if self.closing and queue:
                    # Drain: everything not yet submitted resolves as a
                    # structured cancellation; in-flight futures below
                    # still run to completion.
                    for att in queue:
                        finish(att.index, cancelled_outcome(att.job))
                    queue = []
                while (
                    not broken and not self.closing
                    and queue and len(inflight) < self.workers
                ):
                    att = queue.pop(0)
                    att.attempts += 1
                    if att.attempts > 1:
                        time.sleep(self.backoff_s * (att.attempts - 1))
                    try:
                        fut = executor.submit(run_job, att.job)
                    except BrokenProcessPool:
                        broken = True
                        att.attempts -= 1  # submission never happened
                        queue.insert(0, att)
                        break
                    inflight[fut] = (att, time.perf_counter())
                if not inflight:
                    break
                try:
                    self._reap(inflight, finish, retry)
                except _Timeout:
                    # Deadline overrun: everything still in flight goes
                    # back (or fails); the executor — and its possibly
                    # hung workers — is abandoned.
                    for fut, (att, t0) in inflight.items():
                        fut.cancel()
                        self._retry_or_fail(
                            att, "timeout", time.perf_counter() - t0,
                            finish, retry, code="REPRO-E103",
                        )
                    inflight.clear()
                    retry.extend(queue)
                    self._rebuilds_total.inc()
                    self._shutdown_now(executor)
                    return retry
                except BrokenProcessPool:
                    broken = True
                if broken and not inflight:
                    retry.extend(queue)
                    self._rebuilds_total.inc()
                    self._shutdown_now(executor)
                    return retry
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return retry

    def _reap(
        self,
        inflight: dict[Future, tuple[_Attempt, float]],
        finish: Callable[[int, JobOutcome], None],
        retry: list[_Attempt],
    ) -> None:
        """Wait for progress; resolve every completed future.

        Raises :class:`_Timeout` when the oldest in-flight job has
        overrun ``timeout_s`` without completing, and
        :class:`BrokenProcessPool` when a worker died (after recording
        the victims for retry).
        """
        wait_budget = None
        if self.timeout_s is not None:
            oldest_start = min(t0 for _, t0 in inflight.values())
            wait_budget = self.timeout_s - (time.perf_counter() - oldest_start)
            if wait_budget <= 0:
                raise _Timeout
        finished, _ = wait(
            inflight, timeout=wait_budget, return_when=FIRST_COMPLETED
        )
        if not finished and self.timeout_s is not None:
            raise _Timeout
        saw_broken = False
        for fut in finished:
            att, t0 = inflight.pop(fut)
            elapsed = time.perf_counter() - t0
            try:
                result = fut.result()
            except BrokenProcessPool:
                self._crashes_total.inc()
                self._retry_or_fail(
                    att, "worker process died (crash)", elapsed, finish, retry,
                    code="REPRO-E102",
                )
                saw_broken = True
                continue
            except Exception as exc:  # noqa: BLE001 - surfaced per job
                self._retry_or_fail(
                    att, f"{type(exc).__name__}: {exc}", elapsed, finish,
                    retry, code=_classify(exc),
                )
                continue
            finish(
                att.index,
                JobOutcome(
                    att.job, result=result, attempts=att.attempts,
                    duration_s=elapsed, retry_history=tuple(att.history),
                ),
            )
        if saw_broken:
            # Drain the rest: once broken, every sibling future fails.
            for fut, (att, t0) in list(inflight.items()):
                inflight.pop(fut)
                self._retry_or_fail(
                    att,
                    "worker pool broken by a sibling crash",
                    time.perf_counter() - t0,
                    finish,
                    retry,
                    count_attempt=False,
                )
            raise BrokenProcessPool("worker died")

    def _retry_or_fail(
        self,
        att: _Attempt,
        error: str,
        elapsed: float,
        finish: Callable[[int, JobOutcome], None],
        retry: list[_Attempt],
        count_attempt: bool = True,
        code: str = EngineError.code,
    ) -> None:
        if not count_attempt:
            # Collateral damage (sibling crash): the attempt did not run
            # to a verdict, so it does not consume budget.
            att.attempts -= 1
            retry.append(att)
            return
        if att.attempts > self.retries:
            logger.warning(
                "job %s failed permanently after %d attempt(s): %s",
                att.job.describe(), att.attempts, error,
            )
            finish(
                att.index,
                JobOutcome(
                    att.job, error=error, attempts=att.attempts,
                    duration_s=elapsed, error_code=code,
                    retry_history=tuple(att.history),
                ),
            )
        else:
            logger.debug(
                "job %s attempt %d failed (%s); retrying",
                att.job.describe(), att.attempts, error,
            )
            att.history.append(error)
            self._retries_total.inc()
            retry.append(att)

    @staticmethod
    def _shutdown_now(executor: ProcessPoolExecutor) -> None:
        """Abandon an executor, terminating its workers where possible."""
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
        executor.shutdown(wait=False, cancel_futures=True)
