"""Incremental analysis: skip nests whose source has not changed.

The engine's content-addressed cache already makes *re-computation*
cheap — but a warm 10⁶-cell sweep still pays one cache lookup per cell.
Incremental analysis removes even that: a **manifest** records, per
kernel source file, the :func:`~repro.engine.keys.nest_digest` of every
loop nest analysed last time.  On the next ``repro-fs sweep
--since-manifest``, any nest whose digest is unchanged is *skipped
outright* — zero jobs built, zero lookups — and its cells are reported
as ``skipped_unchanged`` in the sweep's reuse block.

Degradation contract: a missing, unreadable or corrupt manifest is a
*warning*, never an error — the sweep silently falls back to analysing
everything (exactly what a first run does) and rewrites a fresh
manifest on completion.  Wrong skips are impossible because the digest
covers the emitted C source of the nest: if anything that could change
the analysis changed, the digest moves.

:class:`ReuseReport` is the other half of the story: a small accumulator
that classifies every cell of a sweep/experiment by *where its result
came from* (memory tier, disk tier, in-batch dedupe, fresh compute,
or skipped-unchanged) and renders the ``reuse`` block embedded in every
summary — the "93% served from cache" line.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.engine.pool import JobOutcome
from repro.util import get_logger

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "Manifest",
    "ReuseReport",
    "default_manifest_path",
    "reuse_from_outcomes",
]

logger = get_logger(__name__)

#: On-disk manifest schema version; a bump invalidates (= full re-analysis).
MANIFEST_SCHEMA_VERSION = 1


def default_manifest_path() -> Path:
    """``$REPRO_CACHE_DIR``-relative default for ``--since-manifest``."""
    from repro.engine.store import default_cache_dir

    return default_cache_dir() / "manifest.json"


# ---------------------------------------------------------------------------
# Reuse accounting


@dataclass
class ReuseReport:
    """Where a sweep's cells came from: compute vs every reuse tier.

    ``record`` classifies one :class:`~repro.engine.pool.JobOutcome` by
    its ``cache_tier``; ``skipped_unchanged`` cells never become jobs at
    all, so callers add them via :meth:`skip`.  ``to_dict`` is the
    ``reuse`` block embedded in sweep/experiment summaries (schema
    documented in ``docs/ENGINE.md``).
    """

    total: int = 0
    computed: int = 0
    mem_hits: int = 0
    disk_hits: int = 0
    deduped: int = 0
    skipped_unchanged: int = 0
    failed: int = 0

    @property
    def reused(self) -> int:
        """Cells that did not execute: any cache tier + unchanged skips."""
        return (
            self.mem_hits + self.disk_hits + self.deduped
            + self.skipped_unchanged
        )

    @property
    def fraction(self) -> float:
        """Reused ÷ total (0.0 on an empty report)."""
        return self.reused / self.total if self.total else 0.0

    def record(self, outcome: JobOutcome) -> None:
        """Classify one engine outcome into the reuse buckets."""
        self.total += 1
        if not outcome.ok:
            self.failed += 1
            return
        if not outcome.from_cache:
            self.computed += 1
        elif outcome.cache_tier == "mem":
            self.mem_hits += 1
        elif outcome.cache_tier == "disk":
            self.disk_hits += 1
        else:  # "dedupe" (or legacy None from an old journal row)
            self.deduped += 1

    def skip(self, n: int = 1) -> None:
        """Count ``n`` cells skipped outright by the incremental manifest."""
        self.total += n
        self.skipped_unchanged += n

    def merge(self, other: "ReuseReport") -> None:
        """Fold another report (e.g. one per nest) into this one."""
        self.total += other.total
        self.computed += other.computed
        self.mem_hits += other.mem_hits
        self.disk_hits += other.disk_hits
        self.deduped += other.deduped
        self.skipped_unchanged += other.skipped_unchanged
        self.failed += other.failed

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "computed": self.computed,
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "deduped": self.deduped,
            "skipped_unchanged": self.skipped_unchanged,
            "failed": self.failed,
            "reused": self.reused,
            "fraction": round(self.fraction, 4),
        }

    def one_line(self) -> str:
        """Human summary: ``93% reused (mem 40 / disk 2 / skip 6) of 48``."""
        return (
            f"{100.0 * self.fraction:.0f}% reused "
            f"(mem {self.mem_hits} / disk {self.disk_hits} / "
            f"dedupe {self.deduped} / skip {self.skipped_unchanged}) "
            f"of {self.total} cells"
        )


def reuse_from_outcomes(outcomes: Iterable[JobOutcome]) -> ReuseReport:
    """Build a :class:`ReuseReport` over a finished batch."""
    report = ReuseReport()
    for outcome in outcomes:
        report.record(outcome)
    return report


# ---------------------------------------------------------------------------
# Manifest


class Manifest:
    """Source file → ``{nest_name: nest_digest}`` map for ``--since-manifest``.

    Attributes
    ----------
    files:
        The digest map.  Paths are stored as given (the CLI passes
        resolved absolute paths, keeping one entry per physical file).
    warning:
        Set by :meth:`load` when the manifest was missing or corrupt —
        the caller surfaces it and proceeds with a full sweep.
    """

    def __init__(self, files: dict[str, dict[str, str]] | None = None) -> None:
        self.files: dict[str, dict[str, str]] = dict(files or {})
        self.warning: str | None = None

    # -- load/save ----------------------------------------------------------

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Manifest":
        """Read a manifest; degrade to an empty one (with ``warning``) on
        any problem — never raise."""
        path = Path(path)
        manifest = cls()
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            manifest.warning = (
                f"manifest {path} not found; running full analysis"
            )
            logger.warning(manifest.warning)
            return manifest
        except OSError as exc:
            manifest.warning = (
                f"manifest {path} unreadable ({exc}); running full analysis"
            )
            logger.warning(manifest.warning)
            return manifest
        try:
            doc = json.loads(raw)
            if (
                not isinstance(doc, dict)
                or doc.get("schema") != MANIFEST_SCHEMA_VERSION
                or not isinstance(doc.get("files"), dict)
            ):
                raise ValueError("invalid manifest structure")
            files: dict[str, dict[str, str]] = {}
            for fpath, nests in doc["files"].items():
                if not isinstance(nests, dict):
                    raise ValueError("invalid manifest structure")
                files[str(fpath)] = {
                    str(name): str(digest) for name, digest in nests.items()
                }
        except ValueError:
            manifest.warning = (
                f"manifest {path} is corrupt; running full analysis"
            )
            logger.warning(manifest.warning)
            return manifest
        manifest.files = files
        return manifest

    def save(self, path: str | os.PathLike) -> None:
        """Write atomically (same-directory temp + ``os.replace``)."""
        path = Path(path)
        doc = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "written_at": time.time(),
            "files": self.files,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-manifest-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- queries/updates ----------------------------------------------------

    def unchanged(self, path: str, nest_name: str, digest: str) -> bool:
        """Whether ``nest_name`` in ``path`` still has ``digest``."""
        return self.files.get(str(path), {}).get(nest_name) == digest

    def update(self, path: str, nest_name: str, digest: str) -> None:
        self.files.setdefault(str(path), {})[nest_name] = digest

    def replace_file(self, path: str, nests: dict[str, str]) -> None:
        """Overwrite one file's nest→digest map wholesale."""
        self.files[str(path)] = dict(nests)

    def __len__(self) -> int:
        return sum(len(nests) for nests in self.files.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Manifest(files={len(self.files)}, nests={len(self)})"


@dataclass
class IncrementalPlan:
    """What ``--since-manifest`` decided for one sweep.

    ``stale`` nests run; ``skipped`` maps nest name → cached cell count
    (how many cells that skip saved, for the reuse report).
    """

    stale: list = field(default_factory=list)
    skipped: dict[str, int] = field(default_factory=dict)
    warning: str | None = None

    @property
    def skipped_cells(self) -> int:
        return sum(self.skipped.values())
