"""``repro.engine`` — parallel batch execution with result memoization.

The engine turns every model/sim evaluation into a declarative,
hashable :class:`~repro.engine.job.Job`, executes batches on a
crash-isolated process pool (:mod:`repro.engine.pool`), and memoizes
results in a content-addressed on-disk store
(:mod:`repro.engine.store`, ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).

Typical use::

    from repro.engine import Engine
    from repro.model.whatif import WhatIfSweep

    engine = Engine(jobs=4)              # 4 worker processes + cache
    sweep = WhatIfSweep(machine)
    result = sweep.sweep(nest, engine=engine)   # parallel, memoized

Scaling layers on top of the core engine:

* :mod:`repro.engine.memcache` — an in-memory LRU tier in front of the
  store (two-tier cache; ``--mem-cache-mb``);
* :mod:`repro.engine.shards` — :class:`~repro.engine.shards.ShardedEngine`
  partitions a batch across N independent pools by job key
  (``--shards``); :func:`~repro.engine.shards.make_engine` builds the
  right engine from the CLI flags;
* :mod:`repro.engine.incremental` — source-digest manifests for
  ``--since-manifest`` plus the :class:`~repro.engine.incremental.ReuseReport`
  ``reuse`` block embedded in sweep/experiment summaries.

Consumers wired through the engine: ``WhatIfSweep.sweep``,
``ExperimentSuite.run_all``, ``repro.analysis.sensitivity.sensitivity``
and the ``repro sweep`` / ``repro experiments`` CLI commands (flags
``--jobs N`` / ``--shards N`` / ``--mem-cache-mb`` / ``--no-cache``;
maintenance via ``repro cache {stats,clear}``).  See ``docs/ENGINE.md``.
"""

from repro.engine.job import (
    BUILTIN_RUNNERS,
    Job,
    JobError,
    register_runner,
    resolve_runner,
    run_job,
)
from repro.engine.keys import (
    KEY_SCHEMA_VERSION,
    canonical_json,
    canonical_key_value,
    nest_digest,
    stable_hash,
)
from repro.engine.incremental import (
    MANIFEST_SCHEMA_VERSION,
    Manifest,
    ReuseReport,
    default_manifest_path,
    reuse_from_outcomes,
)
from repro.engine.memcache import (
    DEFAULT_MEM_CACHE_MB,
    MemCache,
    MemCacheStats,
    shared_memcache,
)
from repro.engine.pool import JobOutcome, WorkerPool, cancelled_outcome
from repro.engine.scheduler import Engine, default_jobs
from repro.engine.shards import ShardedEngine, make_engine, shard_of
from repro.engine.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreStats,
    default_cache_dir,
)

__all__ = [
    "BUILTIN_RUNNERS",
    "Job",
    "JobError",
    "register_runner",
    "resolve_runner",
    "run_job",
    "KEY_SCHEMA_VERSION",
    "canonical_json",
    "canonical_key_value",
    "nest_digest",
    "stable_hash",
    "JobOutcome",
    "cancelled_outcome",
    "WorkerPool",
    "Engine",
    "default_jobs",
    "MANIFEST_SCHEMA_VERSION",
    "Manifest",
    "ReuseReport",
    "default_manifest_path",
    "reuse_from_outcomes",
    "DEFAULT_MEM_CACHE_MB",
    "MemCache",
    "MemCacheStats",
    "shared_memcache",
    "ShardedEngine",
    "make_engine",
    "shard_of",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "StoreStats",
    "default_cache_dir",
]
