"""Content-addressed on-disk result store.

Layout
------
::

    <root>/v1/<key[:2]>/<key>.json

where ``<root>`` is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro`` and the
``v1`` segment is the entry schema version — a schema bump abandons old
entries wholesale instead of attempting migration (results are cheap to
recompute; wrong results are not).

Each entry is a standalone JSON document::

    {"schema": 1, "key": "<sha256>", "kind": "whatif.point",
     "created_at": 1754..., "label": "...", "result": {...}}

Guarantees
----------
* **atomic writes** — entries are written to a same-directory temp file
  and ``os.replace``-d into place, so a concurrent reader sees either
  the old entry or the new one, never a torn file;
* **corruption tolerance** — an entry that fails to parse, carries the
  wrong schema, or whose embedded key mismatches its filename is
  treated as a miss and unlinked (counted in
  ``engine_cache_corrupt_total``);
* **bounded size** — an optional ``max_entries`` prunes oldest-mtime
  entries after writes (simple LRU-by-write; reads do not touch mtime
  to keep the hot path read-only).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.obs import get_registry
from repro.resilience.errors import StoreError, UsageError
from repro.resilience.faults import fault_point, wants_corruption
from repro.util import get_logger

__all__ = ["STORE_SCHEMA_VERSION", "ResultStore", "StoreStats", "default_cache_dir"]

logger = get_logger(__name__)

#: Version of the on-disk entry schema (also the ``v<N>`` dir segment).
STORE_SCHEMA_VERSION = 1

_KEY_CHARS = set("0123456789abcdef")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass
class StoreStats:
    """Aggregate view of one store (``repro cache stats``).

    ``bytes_read`` / ``bytes_written`` are *cumulative process-lifetime*
    I/O counters (mirrored to ``engine_store_bytes_read_total`` /
    ``engine_store_bytes_written_total`` on ``/metrics``), not a disk
    walk — they are what cache-efficiency dashboards divide by.
    """

    path: str
    schema: int
    entries: int = 0
    total_bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    oldest_age_s: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0

    def to_text(self) -> str:
        lines = [
            f"cache directory : {self.path}",
            f"entry schema    : v{self.schema}",
            f"entries         : {self.entries:,}",
            f"total size      : {self.total_bytes / 1024:,.1f} KiB",
        ]
        for kind in sorted(self.by_kind):
            lines.append(f"  {kind:<22} {self.by_kind[kind]:,}")
        if self.entries:
            lines.append(f"oldest entry    : {self.oldest_age_s:,.0f}s ago")
        lines.append(
            f"bytes read      : {self.bytes_read:,} (this process)"
        )
        lines.append(
            f"bytes written   : {self.bytes_written:,} (this process)"
        )
        return "\n".join(lines)


class ResultStore:
    """Content-addressed JSON result cache.

    Parameters
    ----------
    root:
        Cache root; defaults to :func:`default_cache_dir`.  The store
        only ever touches ``root/v<schema>``.
    max_entries:
        If set, prune oldest entries beyond this count after each write.
    """

    def __init__(
        self, root: str | os.PathLike | None = None, max_entries: int | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.base = self.root / f"v{STORE_SCHEMA_VERSION}"
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        reg = get_registry()
        self._corrupt = reg.counter(
            "engine_cache_corrupt_total",
            "cache entries dropped as unreadable/invalid",
        )
        self._evicted = reg.counter(
            "engine_cache_evicted_total", "cache entries pruned by max_entries"
        )
        self._bytes_read = reg.counter(
            "engine_store_bytes_read_total",
            "bytes deserialized from the on-disk result store",
        )
        self._bytes_written = reg.counter(
            "engine_store_bytes_written_total",
            "bytes serialized into the on-disk result store",
        )

    # -- paths --------------------------------------------------------------

    def _path(self, key: str) -> Path:
        if len(key) != 64 or not set(key) <= _KEY_CHARS:
            raise UsageError(f"not a sha256 hex key: {key!r}")
        return self.base / key[:2] / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        if not self.base.is_dir():
            return
        for shard in sorted(self.base.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    # -- read/write ---------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The cached result dict for ``key``, or ``None`` on miss.

        Any form of corruption — unparsable JSON, wrong schema, key
        mismatch, non-dict result — demotes the entry to a miss and
        removes it so it cannot poison later runs.
        """
        path = self._path(key)
        fault_point("store.get", label=key)
        if wants_corruption("store.get", label=key) and path.is_file():
            # Fault harness: garble the on-disk entry *before* reading it,
            # proving the corruption-tolerance path below on demand.
            try:
                path.write_bytes(b"\x00garbage\xff not json")
            except OSError:  # pragma: no cover - injection best effort
                pass
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except UnicodeDecodeError:
            # Torn/garbled bytes that are not even text: same corruption
            # path as unparsable JSON below.
            raw = "\x00"
        except OSError as exc:  # pragma: no cover - exotic FS errors
            logger.warning("cache read failed for %s: %s", path, exc)
            return None
        self._bytes_read.inc(len(raw))
        try:
            doc = json.loads(raw)
            if (
                not isinstance(doc, dict)
                or doc.get("schema") != STORE_SCHEMA_VERSION
                or doc.get("key") != key
                or not isinstance(doc.get("result"), dict)
            ):
                raise ValueError("invalid entry structure")
        except ValueError:
            logger.warning("dropping corrupted cache entry %s", path)
            self._corrupt.inc()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return doc["result"]

    def put(self, key: str, result: dict, kind: str = "", label: str = "") -> None:
        """Persist ``result`` under ``key`` atomically.

        Tolerates a concurrent writer racing the atomic rename (and a
        concurrent ``clear()`` removing the shard directory between the
        ``mkdir`` and the ``mkstemp``): the write is retried once with
        the parent re-created; only a persistent I/O failure raises
        :class:`~repro.resilience.errors.StoreError` (``REPRO-E301``).
        Losing the race is fine — entries are content-addressed, so
        whichever writer wins stored the same bytes.
        """
        path = self._path(key)
        fault_point("store.put", label=key)
        doc = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "label": label,
            "created_at": time.time(),
            "result": result,
        }
        if wants_corruption("store.put", label=key):
            # Fault harness: simulate a torn write — the entry lands on
            # disk as garbage and must be demoted to a miss by get().
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"\x00torn write\xff")
            return
        last_error: OSError | None = None
        text = json.dumps(doc, separators=(",", ":"), allow_nan=True)
        for attempt in range(2):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=path.parent, prefix=".tmp-", suffix=".json"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as fh:
                        fh.write(text)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
                last_error = None
                break
            except OSError as exc:
                # Another writer (or a concurrent clear/prune) may have
                # removed the shard directory out from under us.
                last_error = exc
                logger.debug(
                    "cache write attempt %d for %s failed (%s); retrying",
                    attempt + 1, path, exc,
                )
        if last_error is not None:
            raise StoreError(
                f"cannot persist cache entry {key[:12]}…: {last_error}",
                context={"key": key, "path": str(path)},
            ) from last_error
        self._bytes_written.inc(len(text))
        if self.max_entries is not None:
            self.prune(self.max_entries)

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def delete(self, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    # -- maintenance --------------------------------------------------------

    def prune(self, max_entries: int) -> int:
        """Drop oldest-mtime entries beyond ``max_entries``; return count."""
        entries = []
        for path in self._entries():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda pair: pair[0])
        dropped = 0
        for _, path in entries[:excess]:
            try:
                path.unlink()
                dropped += 1
            except OSError:
                continue
        if dropped:
            self._evicted.inc(dropped)
            logger.debug("pruned %d cache entries (cap %d)", dropped, max_entries)
        return dropped

    def clear(self) -> int:
        """Remove every entry of this schema version; return the count."""
        dropped = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                dropped += 1
            except OSError:
                continue
        return dropped

    def stats(self) -> StoreStats:
        """Walk the store and aggregate entry counts/sizes/kinds."""
        stats = StoreStats(
            path=str(self.root),
            schema=STORE_SCHEMA_VERSION,
            bytes_read=int(self._bytes_read.value),
            bytes_written=int(self._bytes_written.value),
        )
        now = time.time()
        oldest: float | None = None
        for path in self._entries():
            try:
                st = path.stat()
            except OSError:
                continue
            stats.entries += 1
            stats.total_bytes += st.st_size
            if oldest is None or st.st_mtime < oldest:
                oldest = st.st_mtime
            kind = "?"
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                kind = doc.get("kind") or "?"
            except (ValueError, OSError):
                kind = "<corrupt>"
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        if oldest is not None:
            stats.oldest_age_s = max(0.0, now - oldest)
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, max_entries={self.max_entries})"
