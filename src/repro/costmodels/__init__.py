"""Open64-style loop cost models (Section II-B of the paper).

* :class:`ProcessorModel` — ``Machine_c``: per-iteration cycles from
  functional-unit resources and dependence latencies (Fig. 3);
* :class:`CacheModel` — ``Cache_c`` and ``TLB_c``: footprint-based miss
  estimation with reference groups (Fig. 4);
* :class:`ParallelModel` — ``Parallel_Overhead_c`` and
  ``Loop_Overhead_c``: OpenMP runtime and loop bookkeeping (Fig. 5);
* :class:`TotalCostModel` — Eq. (1), combining the above with the
  false-sharing term supplied by :mod:`repro.model`.
"""

from repro.costmodels.cache import CacheEstimate, CacheModel, ReferenceGroup
from repro.costmodels.contention import (
    BusModel,
    ContentionEstimate,
    ContentionModel,
    SharedCacheModel,
)
from repro.costmodels.parallel import ParallelEstimate, ParallelModel
from repro.costmodels.processor import ProcessorEstimate, ProcessorModel
from repro.costmodels.total import CostBreakdown, TotalCostModel

__all__ = [
    "CacheEstimate",
    "CacheModel",
    "ReferenceGroup",
    "BusModel",
    "ContentionEstimate",
    "ContentionModel",
    "SharedCacheModel",
    "ParallelEstimate",
    "ParallelModel",
    "ProcessorEstimate",
    "ProcessorModel",
    "CostBreakdown",
    "TotalCostModel",
]
