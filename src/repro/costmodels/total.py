"""Total loop cost — Eq. (1) of the paper.

``Total_c = FalseSharing_c + Machine_c + Cache_c + TLB_c
           + Parallel_Overhead_c + Loop_Overhead_c``

:class:`TotalCostModel` combines the processor, cache/TLB and parallel
models into the breakdown the paper's enhanced Open64 cost framework
produces.  The FS term is supplied externally (by
:mod:`repro.model`) as a case count; this module converts it to cycles
with the machine's coherence penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodels.cache import CacheModel
from repro.costmodels.parallel import ParallelModel
from repro.costmodels.processor import ProcessorModel
from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import AddressSpace
from repro.machine import MachineConfig
from repro.obs import get_registry, span


@dataclass(frozen=True)
class CostBreakdown:
    """Eq. (1) terms, all in cycles, for one execution of the nest.

    ``machine/cache/tlb/loop_overhead`` scale with the iteration count
    used at estimation time; ``parallel_overhead`` is per nest execution;
    ``false_sharing`` is the externally supplied FS term.
    """

    false_sharing: float
    machine: float
    cache: float
    tlb: float
    parallel_overhead: float
    loop_overhead: float

    @property
    def total(self) -> float:
        return (
            self.false_sharing
            + self.machine
            + self.cache
            + self.tlb
            + self.parallel_overhead
            + self.loop_overhead
        )

    @property
    def fs_fraction(self) -> float:
        """Share of total cost attributed to false sharing."""
        return self.false_sharing / self.total if self.total else 0.0

    def scaled_without_fs(self) -> "CostBreakdown":
        """The same breakdown with the FS term removed."""
        return CostBreakdown(
            0.0, self.machine, self.cache, self.tlb,
            self.parallel_overhead, self.loop_overhead,
        )


class TotalCostModel:
    """Combined Eq. (1) cost model.

    Parameters
    ----------
    machine:
        The target machine description.
    space:
        Optional shared address space so the cache model sees the same
        array placement as the FS model; a private one is created
        otherwise.
    """

    def __init__(self, machine: MachineConfig, space: AddressSpace | None = None) -> None:
        self.machine = machine
        self.space = space or AddressSpace()
        self.processor = ProcessorModel(machine)
        self.cache = CacheModel(machine, self.space)
        self.parallel = ParallelModel(machine)

    def breakdown(
        self,
        nest: ParallelLoopNest,
        num_threads: int = 1,
        fs_cases: float = 0.0,
        iterations: int | None = None,
    ) -> CostBreakdown:
        """Full Eq. (1) breakdown.

        Parameters
        ----------
        nest:
            Bound, validated loop nest.
        num_threads:
            Thread count (drives the parallel-overhead terms).
        fs_cases:
            Number of false-sharing cases across the whole execution
            (converted to cycles via ``machine.fs_penalty_cycles``).
        iterations:
            Iteration count to scale per-iteration terms by; defaults to
            the nest's full iteration space (the normalization used for
            Eq. (5) percentages — see DESIGN.md).
        """
        with span(
            "costmodels.total", kernel=nest.name, threads=num_threads
        ) as sp:
            iters = nest.total_iterations() if iterations is None else iterations
            per_iter_machine = self.processor.cycles_per_iter(nest)
            cache_est = self.cache.estimate(nest, per_thread_iters=iters)
            par_est = self.parallel.estimate(nest, num_threads)
            breakdown = CostBreakdown(
                false_sharing=fs_cases * self.machine.fs_penalty_cycles,
                machine=per_iter_machine * iters,
                cache=cache_est.cache_cycles_per_iter * iters,
                tlb=cache_est.tlb_cycles_per_iter * iters,
                parallel_overhead=par_est.parallel_overhead_total,
                loop_overhead=par_est.loop_overhead_per_iter * iters,
            )
            sp.set(total_cycles=breakdown.total)
        get_registry().gauge(
            "total_cost_cycles", "Eq. (1) total cycles of the last breakdown"
        ).labels(kernel=nest.name, threads=num_threads).set(breakdown.total)
        return breakdown

    def total_cycles(
        self,
        nest: ParallelLoopNest,
        num_threads: int = 1,
        fs_cases: float = 0.0,
        iterations: int | None = None,
    ) -> float:
        """``Total_c`` — convenience wrapper over :meth:`breakdown`."""
        return self.breakdown(nest, num_threads, fs_cases, iterations).total
