"""Shared-cache and bus contention models — the paper's stated future work.

Section VI: "We will also add other cache contention issues in the model
such as shared cache and bus interferences."  This module implements
both as additional cost terms compatible with Eq. (1):

* :class:`SharedCacheModel` — threads co-resident on a socket compete
  for the shared L3.  When the *combined* per-thread working sets exceed
  the L3, the per-thread view of the cache shrinks proportionally and
  L3 hits degrade into memory accesses for the overflow fraction.
* :class:`BusModel` — coherence and refill traffic occupy a shared
  memory bus of finite bandwidth; past the saturation point every
  transferred line queues behind ``demand/capacity − 1`` others
  (an M/D/1-flavoured linear penalty, the standard analytic choice for
  compile-time models).

Both terms consume quantities the existing models already produce
(footprints, miss rates, FS counts), so they slot into
``Total_c = ... + SharedCache_c + Bus_c`` without new analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodels.cache import CacheModel
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.resilience.errors import CostModelError


@dataclass(frozen=True)
class ContentionEstimate:
    """Extra cycles per whole-loop execution from shared resources."""

    shared_cache_cycles: float
    bus_cycles: float
    l3_pressure: float        # combined footprint / L3 capacity
    bus_utilization: float    # demanded bytes/cycle over capacity

    @property
    def total(self) -> float:
        return self.shared_cache_cycles + self.bus_cycles


class SharedCacheModel:
    """L3 contention: overflow fraction of L3 hits becomes memory traffic."""

    def __init__(self, machine: MachineConfig, cores_per_socket: int = 12) -> None:
        if cores_per_socket <= 0:
            raise CostModelError("cores_per_socket must be positive")
        self.machine = machine
        self.cores_per_socket = cores_per_socket
        self._cache = CacheModel(machine)

    def l3_pressure(self, nest: ParallelLoopNest, num_threads: int) -> float:
        """Combined working set of co-resident threads over L3 capacity."""
        sharers = min(num_threads, self.cores_per_socket)
        iters = nest.total_iterations() // max(num_threads, 1)
        per_thread = self._cache.footprint_bytes(nest, iters)
        return (per_thread * sharers) / self.machine.l3.size_bytes

    def extra_cycles(self, nest: ParallelLoopNest, num_threads: int) -> float:
        """Whole-loop cycles added by L3 overflow.

        The overflow fraction of would-be L3 hits pays memory latency
        instead of L3 latency.
        """
        pressure = self.l3_pressure(nest, num_threads)
        if pressure <= 1.0:
            return 0.0
        overflow = 1.0 - 1.0 / pressure
        iters = nest.total_iterations()
        est = self._cache.estimate(nest, per_thread_iters=iters)
        l3_refs_per_iter = est.misses_per_iter_l2
        extra_per_miss = (
            self.machine.mem_latency_cycles - self.machine.l3.latency_cycles
        )
        return overflow * l3_refs_per_iter * iters * max(extra_per_miss, 0)


class BusModel:
    """Memory-bus interference from refill and coherence traffic."""

    def __init__(
        self, machine: MachineConfig, bytes_per_cycle: float = 16.0
    ) -> None:
        if bytes_per_cycle <= 0:
            raise CostModelError("bytes_per_cycle must be positive")
        self.machine = machine
        self.bytes_per_cycle = bytes_per_cycle
        self._cache = CacheModel(machine)

    def utilization(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        fs_cases: float = 0.0,
        machine_cycles_per_iter: float = 10.0,
    ) -> float:
        """Demanded bus bytes per cycle over capacity.

        Demand: every L2 miss and every FS case moves one line.  The
        demand rate uses the *uncontended* per-iteration time as the
        denominator — utilization > 1 means the bus is the bottleneck.
        """
        iters = nest.total_iterations()
        if iters == 0:
            return 0.0
        est = self._cache.estimate(nest, per_thread_iters=iters // max(num_threads, 1))
        lines_per_iter = est.misses_per_iter_l2 + fs_cases / iters
        bytes_per_iter_all_threads = (
            lines_per_iter * self.machine.line_size * num_threads
        )
        cycles_per_iter = max(machine_cycles_per_iter, 1e-9)
        demand = bytes_per_iter_all_threads / cycles_per_iter
        return demand / self.bytes_per_cycle

    def extra_cycles(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        fs_cases: float = 0.0,
        machine_cycles_per_iter: float = 10.0,
    ) -> float:
        """Whole-loop queueing cycles once the bus saturates."""
        util = self.utilization(
            nest, num_threads, fs_cases, machine_cycles_per_iter
        )
        if util <= 1.0:
            return 0.0
        iters = nest.total_iterations()
        est = self._cache.estimate(nest, per_thread_iters=iters // max(num_threads, 1))
        transfers = est.misses_per_iter_l2 * iters + fs_cases
        line_transfer_cycles = self.machine.line_size / self.bytes_per_cycle
        return (util - 1.0) * transfers * line_transfer_cycles


class ContentionModel:
    """Combined shared-cache + bus interference term for Eq. (1)."""

    def __init__(
        self,
        machine: MachineConfig,
        cores_per_socket: int = 12,
        bus_bytes_per_cycle: float = 16.0,
    ) -> None:
        self.machine = machine
        self.shared_cache = SharedCacheModel(machine, cores_per_socket)
        self.bus = BusModel(machine, bus_bytes_per_cycle)

    def estimate(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        fs_cases: float = 0.0,
        machine_cycles_per_iter: float = 10.0,
    ) -> ContentionEstimate:
        return ContentionEstimate(
            shared_cache_cycles=self.shared_cache.extra_cycles(nest, num_threads),
            bus_cycles=self.bus.extra_cycles(
                nest, num_threads, fs_cases, machine_cycles_per_iter
            ),
            l3_pressure=self.shared_cache.l3_pressure(nest, num_threads),
            bus_utilization=self.bus.utilization(
                nest, num_threads, fs_cases, machine_cycles_per_iter
            ),
        )
