"""Processor model — ``Machine_c`` of Eq. (1) (Open64 Fig. 3).

Estimates the CPU cycles needed to execute one innermost-loop iteration
from two classical bounds:

* **resource bound** — operations of each class scheduled onto the
  available functional units (issue width, integer/FP/memory units);
* **recurrence (dependence-latency) bound** — loop-carried dependence
  chains, dominated in the paper's kernels by memory-resident
  accumulators (``s[j] += ...``) whose load→op→store cycle must complete
  before the next iteration's update.

``Machine_c`` per iteration is the max of the two, the standard modulo-
scheduling lower bound (resMII / recMII) that Open64's LNO uses to pick
unroll factors.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.ir.loops import Assign, ParallelLoopNest
from repro.ir.refs import ArrayRef
from repro.machine import MachineConfig

#: op-class -> functional unit pool
_UNIT_OF = {
    "iadd": "int",
    "imul": "int",
    "idiv": "int",
    "ineg": "int",
    "icmp": "int",
    "logic": "int",
    "shift": "int",
    "mod": "int",
    "cast": "int",
    "fadd": "fp",
    "fmul": "fp",
    "fdiv": "fp",
    "fneg": "fp",
    "fcmp": "fp",
    "call": "fp",
    "load": "mem",
    "store": "mem",
}


@dataclass(frozen=True)
class ProcessorEstimate:
    """Per-iteration processor cost and its constituent bounds."""

    resource_cycles: float
    latency_cycles: float
    op_counts: dict[str, int]

    @property
    def cycles_per_iter(self) -> float:
        """``Machine_c`` per innermost iteration."""
        return max(self.resource_cycles, self.latency_cycles)


class ProcessorModel:
    """Open64-style processor model over a loop nest's innermost body."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    def op_counts(self, nest: ParallelLoopNest) -> Counter:
        """Operation mix of one innermost iteration (incl. stores)."""
        counts: Counter = Counter()
        for stmt in nest.innermost().stmts():
            counts.update(self._stmt_ops(stmt))
        return counts

    def _stmt_ops(self, stmt: Assign) -> Counter:
        counts = stmt.rhs.op_counts()
        if isinstance(stmt.target, ArrayRef):
            counts["store"] += 1
            if stmt.augmented is not None:
                counts["load"] += 1
        if stmt.augmented is not None:
            # The combining op of a compound assignment.
            is_f = (
                stmt.target.accessed_type.is_float
                if isinstance(stmt.target, ArrayRef)
                else stmt.rhs.ctype.is_float
            )
            cls = {"+": "add", "-": "add", "*": "mul", "/": "div"}[stmt.augmented]
            counts[("f" if is_f else "i") + cls] += 1
        return counts

    #: Ops that are not fully pipelined occupy their unit for their whole
    #: latency (libm calls, divides); everything else has throughput 1.
    _UNPIPELINED = ("call", "fdiv", "idiv", "mod")

    def _occupancy(self, op: str) -> int:
        if op in self._UNPIPELINED:
            return self.machine.op_latencies[op]
        return 1

    def resource_bound(self, counts: Counter) -> float:
        """Cycles needed by the most contended resource (resMII).

        Each op occupies its functional unit for its issue *throughput*
        cost — 1 cycle for pipelined ops, the full latency for
        unpipelined ones (divides, libm calls).
        """
        units = self.machine.units
        per_pool: Counter = Counter()
        total_issue = 0
        for op, n in counts.items():
            pool = _UNIT_OF.get(op, "int")
            per_pool[pool] += n * self._occupancy(op)
            total_issue += n  # issue slots are per instruction
        bounds = [
            per_pool["int"] / units.int_units,
            per_pool["fp"] / units.fp_units,
            per_pool["mem"] / units.mem_units,
            total_issue / units.issue_width,
        ]
        return max(bounds) if bounds else 0.0

    def recurrence_bound(self, nest: ParallelLoopNest) -> float:
        """Longest loop-carried dependence cycle (recMII).

        A memory accumulator ``m (op)= e`` carries load → op → store from
        one iteration to the next; a register accumulator carries just
        the op.  Independent statements pipeline, so the bound is the max
        over statements, not the sum.
        """
        lat = self.machine.op_latencies
        worst = 0.0
        for stmt in nest.innermost().stmts():
            if stmt.augmented is None:
                continue
            is_f = (
                stmt.target.accessed_type.is_float
                if isinstance(stmt.target, ArrayRef)
                else stmt.rhs.ctype.is_float
            )
            cls = {"+": "add", "-": "add", "*": "mul", "/": "div"}[stmt.augmented]
            chain = float(lat[("f" if is_f else "i") + cls])
            if isinstance(stmt.target, ArrayRef):
                chain += lat["load"] + lat["store"]
            worst = max(worst, chain)
        return worst

    def latency_bound(self, nest: ParallelLoopNest) -> float:
        """Dependence-latency estimate: recurrence bound, or — for loops
        with no recurrences — the critical path of the widest statement
        divided by the issue width (ILP-smoothed), matching how Open64
        dampens pure dataflow latency with its scheduling model."""
        rec = self.recurrence_bound(nest)
        if rec > 0:
            return rec
        lat = self.machine.op_latencies
        paths = [
            float(stmt.rhs.critical_path(lat))
            for stmt in nest.innermost().stmts()
        ]
        if not paths:
            return 0.0
        return max(paths) / self.machine.units.issue_width

    def estimate(self, nest: ParallelLoopNest) -> ProcessorEstimate:
        """Full per-iteration estimate for the nest's innermost loop."""
        counts = self.op_counts(nest)
        return ProcessorEstimate(
            resource_cycles=self.resource_bound(counts),
            latency_cycles=self.latency_bound(nest),
            op_counts=dict(counts),
        )

    def cycles_per_iter(self, nest: ParallelLoopNest) -> float:
        """Shorthand for ``estimate(nest).cycles_per_iter``."""
        return self.estimate(nest).cycles_per_iter
