"""Parallel and loop overheads — the last two terms of Eq. (1) (Open64 Fig. 5).

``Loop_Overhead_c`` charges the per-iteration bookkeeping (index
increment, bound test) of every loop level, amortized onto innermost
iterations.  ``Parallel_Overhead_c`` charges the OpenMP runtime: region
startup, per-chunk scheduling dispatch, and the end-of-worksharing
barrier — all totals for one execution of the parallel construct.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.resilience.errors import CostModelError
from repro.util import ceil_div


@dataclass(frozen=True)
class ParallelEstimate:
    """Overhead decomposition for one execution of a parallel nest."""

    loop_overhead_per_iter: float
    loop_overhead_total: float
    startup_cycles: float
    dispatch_cycles: float
    barrier_cycles: float

    @property
    def parallel_overhead_total(self) -> float:
        """``Parallel_Overhead_c`` for the whole nest execution."""
        return self.startup_cycles + self.dispatch_cycles + self.barrier_cycles


class ParallelModel:
    """OpenMP parallel-loop overhead model."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    def loop_overhead_per_iter(self, nest: ParallelLoopNest) -> float:
        """Loop bookkeeping cycles charged to one innermost iteration.

        A level that runs ``k`` times per innermost iteration contributes
        ``k`` overheads; outer levels amortize by the product of inner
        trip counts.
        """
        per_iter = self.machine.overheads.loop_overhead_per_iter_cycles
        trips = nest.trip_counts()
        total = 0.0
        inner_product = 1
        # Walk levels innermost -> outermost.
        for trip in reversed(trips):
            total += per_iter / inner_product
            inner_product *= max(trip, 1)
        return total

    def num_chunks(self, nest: ParallelLoopNest, num_threads: int) -> int:
        """Chunks dispatched across one run of the worksharing loop(s).

        The parallel loop re-executes once per iteration of its enclosing
        sequential loops; each execution dispatches
        ``ceil(parallel_trip / chunk)`` chunks.
        """
        depth = nest.parallel_depth()
        trips = nest.trip_counts()
        parallel_trip = trips[depth]
        chunk = nest.schedule.chunk
        if chunk is None:
            chunk = max(ceil_div(parallel_trip, num_threads), 1)
        per_execution = ceil_div(parallel_trip, chunk) if parallel_trip else 0
        outer_runs = 1
        for t in trips[:depth]:
            outer_runs *= max(t, 1)
        return per_execution * outer_runs

    def estimate(self, nest: ParallelLoopNest, num_threads: int) -> ParallelEstimate:
        """Overhead estimate for ``num_threads`` executing the nest."""
        if num_threads <= 0:
            raise CostModelError(f"num_threads must be positive, got {num_threads}")
        oh = self.machine.overheads
        loop_per_iter = self.loop_overhead_per_iter(nest)
        depth = nest.parallel_depth()
        trips = nest.trip_counts()
        outer_runs = 1
        for t in trips[:depth]:
            outer_runs *= max(t, 1)
        return ParallelEstimate(
            loop_overhead_per_iter=loop_per_iter,
            loop_overhead_total=loop_per_iter * nest.total_iterations(),
            startup_cycles=float(oh.parallel_startup_cycles),
            dispatch_cycles=float(
                oh.chunk_dispatch_cycles * self.num_chunks(nest, num_threads)
            ),
            # One barrier per execution of the worksharing region.
            barrier_cycles=float(
                oh.barrier_cycles_per_thread * num_threads * outer_runs
            ),
        )
