"""Cache and TLB models — ``Cache_c`` and ``TLB_c`` of Eq. (1) (Open64 Fig. 4).

The Open64 cache model counts *footprints*: the bytes each reference
group pulls into the cache per loop iteration.  References that differ
only by a small constant (``a[i]`` and ``a[i+1]``) fall into one
reference group and contribute a single footprint, because spatial
locality makes the second access free.  When the accumulated footprint
of a loop level exceeds the cache capacity, every new footprint is a
miss; otherwise only cold misses remain.

The TLB is "modeled as another level of cache" (paper, Section II-B2):
the same footprint computation at page granularity against the TLB
reach.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.affine import AffineExpr
from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import AddressSpace, ArrayRef
from repro.machine import CacheLevel, MachineConfig


@dataclass(frozen=True)
class ReferenceGroup:
    """A set of uniformly generated references sharing footprints.

    ``leader`` is the representative reference; ``members`` the full set.
    ``stride_bytes`` is the byte distance between consecutive innermost
    iterations of the leader's address function.
    """

    leader: ArrayRef
    members: tuple[ArrayRef, ...]
    stride_bytes: int


@dataclass(frozen=True)
class CacheEstimate:
    """Per-innermost-iteration miss traffic and its cycle cost."""

    misses_per_iter_l1: float
    misses_per_iter_l2: float
    misses_per_iter_l3: float
    tlb_misses_per_iter: float
    cache_cycles_per_iter: float
    tlb_cycles_per_iter: float
    groups: tuple[ReferenceGroup, ...]


class CacheModel:
    """Footprint-based cache/TLB cost model for a single thread.

    The model is sequential by construction — coherence interference is
    exactly what the paper adds separately via ``FalseSharing_c``.
    """

    def __init__(self, machine: MachineConfig, space: AddressSpace | None = None) -> None:
        self.machine = machine
        self.space = space or AddressSpace()

    # -- reference groups -----------------------------------------------------

    def reference_groups(self, nest: ParallelLoopNest) -> tuple[ReferenceGroup, ...]:
        """Partition innermost accesses into uniformly-generated groups.

        Two references group together when their flattened address
        functions have identical variable coefficients and their constant
        parts differ by less than one cache line.
        """
        line = self.machine.line_size
        groups: list[list[tuple[ArrayRef, AffineExpr]]] = []
        for ref in nest.innermost_accesses():
            addr = self.space.address_expr(ref)
            placed = False
            for bucket in groups:
                _, first = bucket[0]
                if first.coeffs == addr.coeffs and abs(first.const - addr.const) < line:
                    bucket.append((ref, addr))
                    placed = True
                    break
            if not placed:
                groups.append([(ref, addr)])

        innermost_var = nest.innermost().var
        step = nest.innermost().step
        out = []
        for bucket in groups:
            leader, addr = bucket[0]
            stride = abs(addr.coeff(innermost_var)) * step
            out.append(
                ReferenceGroup(
                    leader=leader,
                    members=tuple(r for r, _ in bucket),
                    stride_bytes=stride,
                )
            )
        return tuple(out)

    # -- footprints -------------------------------------------------------------

    def _bytes_per_iter(self, group: ReferenceGroup) -> float:
        """New bytes the group touches per innermost iteration."""
        line = self.machine.line_size
        if group.stride_bytes == 0:
            # Loop-invariant reference: one line for the whole loop; the
            # per-iteration charge is folded into cold misses elsewhere.
            return 0.0
        return float(min(group.stride_bytes, line))

    def _group_lines_per_iter(self, group: ReferenceGroup) -> float:
        """New cache lines per innermost iteration (miss opportunities)."""
        return self._bytes_per_iter(group) / self.machine.line_size

    def footprint_bytes(self, nest: ParallelLoopNest, per_thread_iters: int) -> float:
        """Total bytes touched over ``per_thread_iters`` innermost iterations."""
        return sum(
            self._bytes_per_iter(g) * per_thread_iters
            for g in self.reference_groups(nest)
        )

    # -- miss rates ---------------------------------------------------------------

    def _misses_per_iter(
        self, nest: ParallelLoopNest, level: CacheLevel, per_thread_iters: int
    ) -> float:
        """Misses per innermost iteration at one cache level.

        Footprint larger than the level's capacity ⇒ streaming: every new
        line is a miss.  Otherwise only cold misses, amortized over the
        loop (each distinct line missed once).
        """
        groups = self.reference_groups(nest)
        lines_per_iter = sum(self._group_lines_per_iter(g) for g in groups)
        total_bytes = sum(self._bytes_per_iter(g) for g in groups) * per_thread_iters
        if total_bytes > level.size_bytes:
            return lines_per_iter
        # Cold misses only: distinct lines / iterations = lines_per_iter
        # already *is* distinct-lines-per-iteration for streaming strides;
        # a resident working set is touched once.
        if per_thread_iters <= 0:
            return 0.0
        distinct_lines = total_bytes / self.machine.line_size
        return distinct_lines / per_thread_iters

    def _tlb_misses_per_iter(
        self, nest: ParallelLoopNest, per_thread_iters: int
    ) -> float:
        page = self.machine.page_size
        reach = self.machine.tlb_entries * page
        groups = self.reference_groups(nest)
        pages_per_iter = sum(
            (self._bytes_per_iter(g) / page) for g in groups
        )
        total_bytes = sum(self._bytes_per_iter(g) for g in groups) * per_thread_iters
        if total_bytes > reach:
            return pages_per_iter
        if per_thread_iters <= 0:
            return 0.0
        distinct_pages = total_bytes / page
        return distinct_pages / per_thread_iters

    # -- public API ------------------------------------------------------------------

    def estimate(
        self, nest: ParallelLoopNest, per_thread_iters: int | None = None
    ) -> CacheEstimate:
        """Cache/TLB cycles per innermost iteration.

        Parameters
        ----------
        nest:
            The (bound) loop nest.
        per_thread_iters:
            Innermost iterations executed per thread; defaults to the
            whole iteration space (single-thread view).
        """
        iters = (
            nest.total_iterations() if per_thread_iters is None else per_thread_iters
        )
        m = self.machine
        m1 = self._misses_per_iter(nest, m.l1, iters)
        m2 = self._misses_per_iter(nest, m.l2, iters)
        m3 = self._misses_per_iter(nest, m.l3, iters)
        tlb = self._tlb_misses_per_iter(nest, iters)
        # Constant-stride streams are prefetchable: the long-latency part
        # of their misses is hidden with machine.prefetch_coverage, the
        # same assumption the simulator's stride prefetcher implements.
        residual = 1.0 - m.prefetch_coverage
        cache_cycles = (
            m1 * (m.l2.latency_cycles - m.l1.latency_cycles)
            + residual
            * (
                m2 * (m.l3.latency_cycles - m.l2.latency_cycles)
                + m3 * m.mem_latency_cycles
            )
        )
        return CacheEstimate(
            misses_per_iter_l1=m1,
            misses_per_iter_l2=m2,
            misses_per_iter_l3=m3,
            tlb_misses_per_iter=tlb,
            cache_cycles_per_iter=cache_cycles,
            tlb_cycles_per_iter=tlb * m.tlb_miss_cycles,
            groups=self.reference_groups(nest),
        )
