"""Diagnose a user-written kernel: FS prediction + locality profile.

A scenario beyond the paper's three kernels: a 2-D particle-binning
(histogram-by-row) loop a user suspects is slow.  We parse their C,
use the *prediction* model (Section III-E) so the analysis stays cheap,
and also pull a stack-distance (reuse-distance) profile out of the
model's machinery — the locality diagnostic compilers pair with FS
detection.

Run:  python examples/diagnose_custom_kernel.py
"""

import numpy as np

from repro import FalseSharingModel, paper_machine, parse_c_source
from repro.model import FalseSharingPredictor, StackDistanceAnalyzer
from repro.model.ownership import OwnershipListGenerator

C_SOURCE = """
#define NPART 2048
#define NBINS 96

double weight[NPART];
int bin_of[NPART];
double histogram[NBINS];
double row_sum[NBINS];

void bin_particles(void)
{
    int b, p;
    #pragma omp parallel for private(b, p) schedule(static, 1)
    for (b = 0; b < NBINS; b++) {
        for (p = 0; p < NPART; p++) {
            histogram[b] += weight[p];
            row_sum[b] += weight[p] * 0.5;
        }
    }
}
"""

THREADS = 8


def main() -> None:
    machine = paper_machine()
    model = FalseSharingModel(machine)

    (kernel,) = parse_c_source(C_SOURCE)
    print(f"kernel: {kernel.nest}")
    print()

    # -- fast FS prediction (a prefix of chunk runs + linear regression) --
    predictor = FalseSharingPredictor(model, n_runs=6)
    pred = predictor.predict(kernel.nest, THREADS, chunk=1)
    print(f"predicted FS cases  : {pred.predicted_fs_cases:,.0f} "
          f"(from {pred.sampled_runs} of {pred.total_runs} chunk runs, "
          f"fit R^2 = {pred.fit.r2:.4f})")

    full = model.analyze(kernel.nest, THREADS, chunk=1)
    print(f"full-model FS cases : {full.fs_cases:,}")
    for victim in full.victim_arrays():
        print(f"victim              : {victim.name} ({victim.fs_cases:,} cases)")
    print()

    # Both accumulator arrays are indexed by the parallel loop variable
    # with chunk 1 — eight threads per 64-byte line.  A chunk of 8
    # (doubles per line) aligns thread regions to lines:
    fixed = model.analyze(kernel.nest, THREADS, chunk=8)
    print(f"with schedule(static,8): {fixed.fs_cases:,} FS cases")
    print()

    # -- reuse-distance profile of one thread's access stream ------------
    gen = OwnershipListGenerator(kernel.nest, THREADS, machine.line_size)
    trace = gen.full_matrix(0, max_steps=4096).ravel().tolist()
    hist = StackDistanceAnalyzer().histogram(trace)
    print("reuse-distance profile (thread 0, first 4096 iterations):")
    print(f"  accesses      : {hist.accesses:,}")
    print(f"  cold misses   : {hist.cold:,}")
    for capacity in (8, 64, 512, machine.model_stack_lines):
        misses = hist.misses(capacity)
        rate = 100.0 * misses / hist.accesses
        print(f"  LRU({capacity:>5} lines) miss rate: {rate:5.1f}%")


if __name__ == "__main__":
    main()
