"""Reproduce one of the paper's tables end to end, at your chosen scale.

Runs Table II (DFT: measured vs modeled FS overhead) — the paper's
strongest accuracy result — and prints it next to the paper's claim.
Use ``--scale full`` for the EXPERIMENTS.md configuration (minutes) or
the default ``tiny`` for a quick look (seconds).

Run:  python examples/reproduce_table.py [--scale tiny|full]
"""

import argparse

from repro.analysis import ExperimentSuite, PAPER_EXPECTATIONS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("tiny", "full"), default="tiny")
    parser.add_argument(
        "--table",
        choices=("1", "2", "3", "4", "5", "6"),
        default="2",
        help="which paper table to regenerate (default: Table II)",
    )
    args = parser.parse_args()

    suite = ExperimentSuite(scale=args.scale)
    driver = getattr(suite, f"run_table{args.table}")
    result = driver()

    print(result.to_text())
    print()
    expectation = PAPER_EXPECTATIONS.get(result.experiment)
    if expectation:
        print(f"paper's claim: {expectation}")


if __name__ == "__main__":
    main()
