"""Eliminate false sharing by padding — advised and verified by the model.

The classic cure for struct-array false sharing (Jeremiassen & Eggers,
the paper's ref. [10]): pad each element out to a cache-line multiple.
The :class:`PaddingAdvisor` finds the victim array with the FS model,
constructs the padded layout, *re-verifies* the rewritten loop with the
model, and here we double-check the cure end-to-end on the simulator.

Run:  python examples/pad_shared_structs.py
"""

from repro import MulticoreSimulator, paper_machine
from repro.kernels import build_linreg_nest
from repro.transform import PaddingAdvisor

THREADS = 8


def main() -> None:
    machine = paper_machine()
    nest = build_linreg_nest(tasks=240, ppt=96)

    advisor = PaddingAdvisor(machine)
    advices = advisor.advise(nest, THREADS)
    if not advices:
        print("no padding opportunities found")
        return

    for adv in advices:
        print(f"victim array        : {adv.array}")
        print(f"element size        : {adv.element_bytes} B -> {adv.padded_bytes} B "
              f"(+{adv.pad_bytes} B padding per element)")
        print(f"extra memory        : {adv.extra_memory_bytes:,} B total")
        print(f"model FS cases      : {adv.fs_before:,} -> {adv.fs_after:,} "
              f"({adv.fs_reduction_percent:.1f}% removed)")
        print()

    # Validate the top recommendation on the execution substrate.
    adv = advices[0]
    sim = MulticoreSimulator(machine)
    before = sim.run(nest, THREADS, chunk=1)
    after = sim.run(adv.nest_after, THREADS, chunk=1)
    speedup = before.cycles / after.cycles
    print("simulator validation (chunk=1, the worst case):")
    print(f"  original : {before.seconds * 1e3:.3f} ms, "
          f"{before.counters.coherence_events:,} coherence events")
    print(f"  padded   : {after.seconds * 1e3:.3f} ms, "
          f"{after.counters.coherence_events:,} coherence events")
    print(f"  speedup  : {speedup:.2f}x")


if __name__ == "__main__":
    main()
