"""Map the (threads × chunk) false-sharing landscape of a loop.

The paper's closing pitch: the model should help pick "the optimal
chunk size for OpenMP loops and the optimal number of threads to
execute the loop."  This example sweeps both knobs at once with the
fast LR predictor, prints the landscape, exports it as CSV, and
cross-checks the best cell on the simulator.

Run:  python examples/whatif_landscape.py
"""

from pathlib import Path

from repro import MulticoreSimulator, paper_machine
from repro.analysis import ExperimentResult, result_to_csv
from repro.kernels import linear_regression
from repro.model import WhatIfSweep

THREADS = (2, 4, 8, 16)
CHUNKS = (1, 2, 4, 8, 16)


def main() -> None:
    machine = paper_machine()
    kernel = linear_regression(8, tasks=240, total_points=480)

    sweep = WhatIfSweep(machine, predictor_runs=6)
    result = sweep.sweep(kernel.nest, threads=THREADS, chunks=CHUNKS)

    table = ExperimentResult(
        "What-if", f"{result.nest_name}: FS landscape",
        ("threads", "chunk", "FS cases", "FS share %", "est. cycles"),
    )
    for row in result.to_rows():
        table.add_row(*row)
    print(table.to_text())

    csv_path = Path("whatif_landscape.csv")
    result_to_csv(table, csv_path)
    print(f"\nlandscape exported to {csv_path}")

    best = result.best()
    print(f"\nmodel's pick: {best.threads} threads, "
          f"schedule(static,{best.chunk}) — "
          f"{100 * best.fs_share:.1f}% FS share")

    # Validate the pick against its chunk=1 sibling on the simulator.
    sim = MulticoreSimulator(machine)
    chosen = sim.run(kernel.nest, best.threads, chunk=best.chunk)
    naive = sim.run(kernel.nest, best.threads, chunk=1)
    print(f"simulated: {chosen.seconds * 1e3:.3f} ms vs "
          f"{naive.seconds * 1e3:.3f} ms at chunk=1 "
          f"({naive.cycles / chosen.cycles:.2f}x faster)")


if __name__ == "__main__":
    main()
