"""Map the (threads × chunk) false-sharing landscape of a loop.

The paper's closing pitch: the model should help pick "the optimal
chunk size for OpenMP loops and the optimal number of threads to
execute the loop."  This example sweeps both knobs at once with the
fast LR predictor — fanned out across a :mod:`repro.engine` worker
pool, with every grid point memoized in the on-disk result store, so a
re-run of the same landscape is served from cache — prints the
landscape, exports it as CSV, and cross-checks the best cell on the
simulator.

Run:  python examples/whatif_landscape.py
(set REPRO_CACHE_DIR to relocate the result cache; pass --jobs N to
change the worker count)
"""

import sys
from pathlib import Path

from repro import MulticoreSimulator, paper_machine
from repro.analysis import ExperimentResult, result_to_csv
from repro.engine import Engine, default_jobs
from repro.kernels import linear_regression
from repro.model import WhatIfSweep

THREADS = (2, 4, 8, 16)
CHUNKS = (1, 2, 4, 8, 16)


def main() -> None:
    machine = paper_machine()
    kernel = linear_regression(8, tasks=240, total_points=480)

    jobs = default_jobs()
    if "--jobs" in sys.argv:
        jobs = int(sys.argv[sys.argv.index("--jobs") + 1])
    engine = Engine(jobs=jobs)

    sweep = WhatIfSweep(machine, predictor_runs=6)
    result = sweep.sweep(
        kernel.nest, threads=THREADS, chunks=CHUNKS, engine=engine
    )

    from repro.obs import get_registry

    snap = get_registry().snapshot()["counters"]
    print(f"engine: jobs={jobs}, "
          f"cache hits={snap.get('engine_cache_hits_total', 0):.0f}, "
          f"misses={snap.get('engine_cache_misses_total', 0):.0f} "
          f"(store: {engine.store.root})")

    table = ExperimentResult(
        "What-if", f"{result.nest_name}: FS landscape",
        ("threads", "chunk", "FS cases", "FS share %", "est. cycles"),
    )
    for row in result.to_rows():
        table.add_row(*row)
    print(table.to_text())

    csv_path = Path("whatif_landscape.csv")
    result_to_csv(table, csv_path)
    print(f"\nlandscape exported to {csv_path}")

    best = result.best()
    print(f"\nmodel's pick: {best.threads} threads, "
          f"schedule(static,{best.chunk}) — "
          f"{100 * best.fs_share:.1f}% FS share")

    # Validate the pick against its chunk=1 sibling on the simulator.
    sim = MulticoreSimulator(machine)
    chosen = sim.run(kernel.nest, best.threads, chunk=best.chunk)
    naive = sim.run(kernel.nest, best.threads, chunk=1)
    print(f"simulated: {chosen.seconds * 1e3:.3f} ms vs "
          f"{naive.seconds * 1e3:.3f} ms at chunk=1 "
          f"({naive.cycles / chosen.cycles:.2f}x faster)")


if __name__ == "__main__":
    main()
