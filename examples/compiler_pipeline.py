"""The full compiler pipeline: parse → legality → cost → FS → transform → emit.

This example strings every stage of the reproduction together the way
the paper envisions a compiler using it: the loop comes in as C, gets
checked for parallelization legality (Parallel model, Section II-B3),
priced by the Eq. (1) cost models, diagnosed for false sharing
(Section III), transformed (chunk + padding + unrolling advice), and the
fixed kernel is emitted back as C.

Run:  python examples/compiler_pipeline.py
"""

from repro import FalseSharingModel, paper_machine, parse_c_source
from repro.costmodels import TotalCostModel
from repro.ir import analyze_dependences, validate_nest
from repro.model import diagnose
from repro.transform import ChunkSizeOptimizer, PaddingAdvisor, UnrollAdvisor

C_SOURCE = """
#define NTASKS 192
#define PPT 48

typedef struct { double x; double y; } point_t;
typedef struct {
    point_t *points;
    long long sx; long long sxx; long long sy; long long syy; long long sxy;
} lreg_args;

lreg_args tid_args[NTASKS];

void linear_regression(void)
{
    int i, j;
    #pragma omp parallel for private(i, j) schedule(static, 1)
    for (j = 0; j < NTASKS; j++) {
        for (i = 0; i < PPT; i++) {
            tid_args[j].sx  += tid_args[j].points[i].x;
            tid_args[j].sxx += tid_args[j].points[i].x * tid_args[j].points[i].x;
            tid_args[j].sy  += tid_args[j].points[i].y;
            tid_args[j].syy += tid_args[j].points[i].y * tid_args[j].points[i].y;
            tid_args[j].sxy += tid_args[j].points[i].x * tid_args[j].points[i].y;
        }
    }
}
"""

THREADS = 8


def main() -> None:
    machine = paper_machine()

    # 1. Frontend.
    (kernel,) = parse_c_source(C_SOURCE)
    nest = kernel.nest
    print(f"[frontend]  {nest}")

    # 2. Analyzability + parallelization legality.
    report = validate_nest(nest)
    deps = analyze_dependences(nest)
    verdict = "legal" if deps.parallelizable(nest.parallel_var) else "ILLEGAL"
    print(f"[legality]  parallelizing over {nest.parallel_var!r}: {verdict} "
          f"({len(deps.dependences)} dependences, "
          f"{len(report.warnings)} warnings)")

    # 3. Baseline cost (Eq. 1 without the FS term).
    tm = TotalCostModel(machine)
    breakdown = tm.breakdown(nest, num_threads=THREADS)
    print(f"[cost]      machine={breakdown.machine:,.0f}  "
          f"cache={breakdown.cache:,.0f}  tlb={breakdown.tlb:,.0f}  "
          f"overheads={breakdown.parallel_overhead + breakdown.loop_overhead:,.0f} cycles")

    # 4. False-sharing analysis + diagnosis.
    model = FalseSharingModel(machine)
    result = model.analyze(nest, THREADS)
    print("[fs-model]")
    print(diagnose(result).to_text())

    # 5. Transformations.
    chunk_rec = ChunkSizeOptimizer(machine).recommend(nest, THREADS)
    print(f"[schedule]  recommend schedule(static,{chunk_rec.best_chunk}), "
          f"predicted gain {chunk_rec.improvement_percent(1):.0f}% vs chunk=1")

    unroll_rec = UnrollAdvisor(machine).recommend(nest)
    print(f"[unroll]    recommend factor {unroll_rec.best_factor} "
          f"({unroll_rec.speedup_percent():.0f}% modeled gain)")

    advices = PaddingAdvisor(machine).advise(nest, THREADS)
    if advices:
        adv = advices[0]
        print(f"[padding]   pad {adv.array} elements "
              f"{adv.element_bytes} -> {adv.padded_bytes} B: "
              f"{adv.fs_reduction_percent:.0f}% of FS removed "
              f"(+{adv.extra_memory_bytes:,} B)")
        print()
        print("[emit]      transformed kernel:")
        print(adv.emit_c())


if __name__ == "__main__":
    main()
