"""Record an execution trace, replay it through two detectors.

The related-work pipeline (capture → offline analysis) next to the
compile-time pipeline, on the same kernel:

1. record the heat kernel's memory trace to a compressed ``.npz``;
2. replay it through the φ/mask detector — counts must equal a direct
   compile-time analysis (the trace is just another transport);
3. run the runtime baseline (word-granularity true/false classification)
   over the same execution and compare the work each approach had to do.

Run:  python examples/trace_and_replay.py
"""

import os
import tempfile

from repro import FalseSharingModel, paper_machine
from repro.baselines import RuntimeFSDetector
from repro.kernels import heat_diffusion
from repro.model import FalseSharingPredictor
from repro.sim import load_trace, record_trace, replay_fs_detection

THREADS = 8


def main() -> None:
    machine = paper_machine()
    kernel = heat_diffusion(rows=6, cols=1026)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "heat.npz")

        # 1. Capture.
        meta = record_trace(kernel.nest, THREADS, machine, path, chunk=1)
        size_kb = os.path.getsize(path) / 1024
        print(f"recorded {meta.total_accesses:,} accesses "
              f"({meta.num_threads} threads, chunk={meta.chunk}) "
              f"-> {size_kb:.0f} KiB compressed")

        # 2. Offline replay == compile-time analysis.
        trace = load_trace(path)
        detector = replay_fs_detection(trace, machine.model_stack_lines)
        direct = FalseSharingModel(machine).analyze(kernel.nest, THREADS, chunk=1)
        print(f"trace replay : {detector.stats.fs_cases:,} FS cases")
        print(f"direct model : {direct.fs_cases:,} FS cases "
              f"({'identical' if detector.stats.fs_cases == direct.fs_cases else 'MISMATCH'})")

    # 3. Runtime baseline vs the predictor: same diagnosis, very
    #    different amounts of work.
    runtime = RuntimeFSDetector(machine).run(kernel.nest, THREADS, chunk=1)
    pred = FalseSharingPredictor(
        FalseSharingModel(machine), n_runs=kernel.pred_chunk_runs
    ).predict(kernel.nest, THREADS, chunk=1)
    print()
    print(f"runtime detector : {runtime.stats.false_sharing_events:,} FS events "
          f"after observing {runtime.stats.accesses:,} accesses")
    print(f"LR predictor     : {pred.predicted_fs_cases:,.0f} FS cases "
          f"after observing {pred.prefix_result.accesses:,} accesses "
          f"({runtime.stats.accesses / max(pred.prefix_result.accesses, 1):.0f}x less work)")
    print(f"victim (both)    : "
          f"{runtime.victim_arrays()[0][0]} / {direct.victim_arrays()[0].name}")


if __name__ == "__main__":
    main()
