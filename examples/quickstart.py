"""Quickstart: detect false sharing in an OpenMP loop at compile time.

This walks the paper's motivating example (Fig. 1): the Phoenix
linear-regression kernel whose per-task accumulator structs share cache
lines.  We parse the actual C source, run the compile-time FS model,
and print what a compiler pass would report — no execution of the C
code involved.

Run:  python examples/quickstart.py
"""

from repro import FalseSharingModel, paper_machine, parse_c_source
from repro.costmodels import TotalCostModel

# The paper's Figure 1, at a reduced size (NTASKS x PPT points).
C_SOURCE = """
#define NTASKS 96
#define PPT 64

typedef struct { double x; double y; } point_t;

typedef struct {
    point_t *points;
    long long sx;
    long long sxx;
    long long sy;
    long long syy;
    long long sxy;
} lreg_args;

lreg_args tid_args[NTASKS];

void linear_regression(void)
{
    int i, j;
    #pragma omp parallel for private(i, j) schedule(static, 1)
    for (j = 0; j < NTASKS; j++) {
        for (i = 0; i < PPT; i++) {
            tid_args[j].sx  += tid_args[j].points[i].x;
            tid_args[j].sxx += tid_args[j].points[i].x * tid_args[j].points[i].x;
            tid_args[j].sy  += tid_args[j].points[i].y;
            tid_args[j].syy += tid_args[j].points[i].y * tid_args[j].points[i].y;
            tid_args[j].sxy += tid_args[j].points[i].x * tid_args[j].points[i].y;
        }
    }
}
"""

THREADS = 8


def main() -> None:
    machine = paper_machine()  # the paper's 48-core box, 64 B lines
    model = FalseSharingModel(machine)
    total_model = TotalCostModel(machine)

    (kernel,) = parse_c_source(C_SOURCE)
    print(f"parsed kernel: {kernel.nest}")
    print()

    # The paper's comparison: an FS-heavy chunk vs an FS-light one.
    for chunk in (1, 10):
        result = model.analyze(kernel.nest, num_threads=THREADS, chunk=chunk)
        fs_cycles = result.fs_cycles(machine)
        base = total_model.total_cycles(kernel.nest, THREADS, fs_cases=0.0)
        share = 100.0 * fs_cycles / (base + fs_cycles)
        print(f"schedule(static,{chunk}) on {THREADS} threads:")
        print(f"  false-sharing cases : {result.fs_cases:,} "
              f"({result.fs_read_cases:,} read / {result.fs_write_cases:,} write)")
        print(f"  estimated FS share  : {share:.1f}% of loop time")
        for victim in result.victim_arrays():
            print(f"  victim data         : {victim.name} "
                  f"({victim.fs_cases:,} cases across {victim.lines} cache lines)")
        print()

    print("Diagnosis: the 48-byte lreg_args structs straddle 64-byte cache")
    print("lines, so adjacent tasks — adjacent *threads* under")
    print("schedule(static,1) — ping-pong the accumulator lines.  See")
    print("examples/pad_shared_structs.py for the model-verified fix.")


if __name__ == "__main__":
    main()
