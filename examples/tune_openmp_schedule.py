"""Tune an OpenMP schedule chunk with the cost model, then validate.

The paper's Fig. 2 shows the linear-regression kernel speeding up by
growing the chunk size.  This example does what the paper proposes as
future work: it lets the *model* choose the chunk (via the fast
linear-regression FS predictor), then validates the choice on the MESI
simulator — the reproduction's stand-in for real hardware.

Run:  python examples/tune_openmp_schedule.py
"""

from repro import MulticoreSimulator, paper_machine
from repro.kernels import linear_regression
from repro.transform import ChunkSizeOptimizer

THREADS = 8
CANDIDATES = (1, 2, 4, 8, 10, 16, 24)


def main() -> None:
    machine = paper_machine()
    kernel = linear_regression(THREADS, tasks=480, total_points=960)

    # 1. Model-guided recommendation (compile-time only).
    optimizer = ChunkSizeOptimizer(machine, use_predictor=True, predictor_runs=8)
    rec = optimizer.recommend(kernel.nest, THREADS, candidates=CANDIDATES)
    print(f"model recommendation: schedule(static,{rec.best_chunk})")
    print(f"predicted gain vs schedule(static,1): "
          f"{rec.improvement_percent(1):.1f}%")
    print()

    # 2. Validation: simulate every candidate (the "hardware" check the
    #    compiler never needs to do).
    sim = MulticoreSimulator(machine)
    print(f"{'chunk':>6} | {'model cost (Mcyc)':>18} | {'sim time (ms)':>14}")
    print("-" * 46)
    times = {}
    for score in rec.scores:
        result = sim.run(kernel.nest, THREADS, chunk=score.chunk)
        times[score.chunk] = result.seconds * 1e3
        marker = "  <-- recommended" if score.chunk == rec.best_chunk else ""
        print(f"{score.chunk:>6} | {score.total_cycles / 1e6:>18.3f} | "
              f"{result.seconds * 1e3:>14.4f}{marker}")

    best_sim = min(times, key=times.get)
    print()
    print(f"simulated optimum: chunk={best_sim} "
          f"({times[best_sim]:.4f} ms vs {times[rec.best_chunk]:.4f} ms "
          f"for the recommendation)")
    gap = 100.0 * (times[rec.best_chunk] - times[best_sim]) / times[best_sim]
    print(f"recommendation is within {gap:.1f}% of the simulated optimum")


if __name__ == "__main__":
    main()
