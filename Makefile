# Developer shortcuts.  Everything assumes a source checkout
# (PYTHONPATH=src); `pip install -e .` users can drop the prefix.

PY      := python
PP      := PYTHONPATH=src
BENCHD  := .bench

.PHONY: test test-fast lint bench-smoke bench-overhead bench-sweep \
        bench-sweep-sharded bench-sweep-sharded-quick \
        bench-model bench-model-quick service-smoke chaos-smoke clean

test:
	$(PP) $(PY) -m pytest -q

test-fast:
	$(PP) $(PY) -m pytest -q -m "not slow"

lint:
	ruff check src tests

# One profiled benchmark run: keeps the Chrome-trace and metrics
# exporters exercised end-to-end (CI runs this on every push).
bench-smoke:
	mkdir -p $(BENCHD)
	$(PP) $(PY) -c "from repro.kernels import heat_source; \
	  open('$(BENCHD)/heat.c', 'w').write(heat_source(6, 258))"
	$(PP) $(PY) -m repro profile $(BENCHD)/heat.c -t 4 -c 1 \
	  --profile $(BENCHD)/trace.json --metrics-out $(BENCHD)/metrics.json
	$(PP) $(PY) -c "import json; \
	  doc = json.load(open('$(BENCHD)/trace.json')); \
	  names = {e['name'] for e in doc['traceEvents'] if e['ph'] == 'X'}; \
	  assert len(names) >= 6, names; \
	  m = json.load(open('$(BENCHD)/metrics.json')); \
	  assert any(k.startswith('fs_cases{') for k in m['counters']), m; \
	  print('bench-smoke OK:', len(names), 'span names')"

# Cold-vs-warm engine sweep: same grid twice through a fresh result
# store; records wall times + cache counters to BENCH_engine.json and
# asserts the warm run is served from cache.
bench-sweep:
	mkdir -p $(BENCHD)
	$(PP) REPRO_CACHE_DIR=$(BENCHD)/cache $(PY) benchmarks/bench_engine_sweep.py \
	  --jobs 4 --out $(BENCHD)/BENCH_engine.json
	$(PP) $(PY) -c "import json; \
	  doc = json.load(open('$(BENCHD)/BENCH_engine.json')); \
	  print('bench-sweep OK:', json.dumps(doc['summary']))"

# Sharded / two-tier / incremental sweep gate (docs/ENGINE.md): the
# same grid at --shards 1/2/4 must be byte-identical to the serial
# uncached baseline (points AND store contents); a warm re-run must be
# >=95% memory-tier hits with zero pool dispatches; an incremental
# manifest re-run must recompute only the edited kernel's cells.  The
# >=2x cold-scaling gate at 4 shards additionally applies on boxes
# with >=4 usable cores.  Writes BENCH_shards.json.
bench-sweep-sharded:
	mkdir -p $(BENCHD)
	$(PP) REPRO_CACHE_DIR=$(BENCHD)/shard-cache $(PY) benchmarks/bench_shard_sweep.py \
	  --out $(BENCHD)/BENCH_shards.json
	$(PP) $(PY) -c "import json; \
	  doc = json.load(open('$(BENCHD)/BENCH_shards.json')); \
	  print('bench-sweep-sharded OK:', json.dumps(doc['summary']))"

# CI-sized variant: small grid, invariants only (no scaling gate).
bench-sweep-sharded-quick:
	mkdir -p $(BENCHD)
	$(PP) REPRO_CACHE_DIR=$(BENCHD)/shard-cache $(PY) benchmarks/bench_shard_sweep.py \
	  --quick --out $(BENCHD)/BENCH_shards.json
	$(PP) $(PY) -c "import json; \
	  doc = json.load(open('$(BENCHD)/BENCH_shards.json')); \
	  assert doc['summary']['ok'], doc['failures']; \
	  print('bench-sweep-sharded-quick OK:', json.dumps(doc['summary']))"

# Engine-tier FS simulation benchmark (docs/PERFORMANCE.md): jit /
# fast / auto tiers vs scalar reference plus the exact steady-state
# early exit and optional segment parallelism.  Writes
# BENCH_model.json; exits nonzero if the ≥10× micro / ≥50× large-grid
# targets regress or any engine pair disagrees.  Tune with e.g.
#   make bench-model ENGINE=jit SIMJOBS=4
ENGINE  ?= all
SIMJOBS ?= 1
bench-model:
	$(PP) $(PY) benchmarks/bench_model_fastpath.py --out BENCH_model.json \
	  --engine $(ENGINE) --sim-jobs $(SIMJOBS)

# CI-sized variant: seconds instead of minutes, looser targets
# (equivalence-only for the jit/parallel tiers).
bench-model-quick:
	mkdir -p $(BENCHD)
	$(PP) $(PY) benchmarks/bench_model_fastpath.py --quick \
	  --out $(BENCHD)/BENCH_model.json --engine $(ENGINE) \
	  --sim-jobs $(SIMJOBS)

# Boot the analysis service daemon, drive the full client contract
# (submit, NDJSON stream, warm-cache re-submit, /metrics counters) and
# require a graceful SIGTERM drain with exit 0 (docs/SERVICE.md).
service-smoke:
	mkdir -p $(BENCHD)
	$(PP) REPRO_CACHE_DIR=$(BENCHD)/svc-cache $(PY) benchmarks/service_smoke.py \
	  --out $(BENCHD)/SERVICE_smoke.json

# Chaos soak: SIGKILL the journaled daemon 5 times mid-sweep and prove
# zero lost and zero duplicated result rows across crash-recovery
# (docs/SERVICE.md "Operations & failure modes").
chaos-smoke:
	mkdir -p $(BENCHD)
	$(PP) $(PY) benchmarks/chaos_soak.py --kills 5 \
	  --out $(BENCHD)/CHAOS_soak.json

# Guard the <5% disabled-overhead budget on the model's hot path.
bench-overhead:
	$(PP) $(PY) -m pytest benchmarks/bench_model_throughput.py -q \
	  -k "detector or end_to_end" --benchmark-min-rounds=3

clean:
	rm -rf $(BENCHD) .pytest_cache .ruff_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
